/**
 * @file
 * Unit tests for the mask generators, including paper Algorithm 1.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::core;
using tbstc::util::FatalError;
using tbstc::util::Rng;

Matrix
randomScores(size_t r, size_t c, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(r, c);
    for (auto &v : m.data())
        v = static_cast<float>(std::fabs(rng.heavyTail()));
    return m;
}

TEST(UsMask, HitsExactTarget)
{
    const Matrix s = randomScores(32, 32, 1);
    const Mask m = usMask(s, 0.75);
    EXPECT_EQ(m.nnz(), 256u);
}

TEST(UsMask, KeepsLargestScores)
{
    Matrix s(1, 8, {1, 8, 2, 7, 3, 6, 4, 5});
    const Mask m = usMask(s, 0.5);
    EXPECT_EQ(m.at(0, 1), 1);
    EXPECT_EQ(m.at(0, 3), 1);
    EXPECT_EQ(m.at(0, 5), 1);
    EXPECT_EQ(m.at(0, 7), 1);
    EXPECT_EQ(m.at(0, 0), 0);
}

TEST(UsMask, ZeroAndFullSparsity)
{
    const Matrix s = randomScores(8, 8, 2);
    EXPECT_EQ(usMask(s, 0.0).nnz(), 64u);
    EXPECT_EQ(usMask(s, 1.0).nnz(), 0u);
}

TEST(TsMask, RespectsTileConstraint)
{
    const Matrix s = randomScores(16, 32, 3);
    const Mask m = tsMask(s, 4, 8);
    EXPECT_TRUE(validateTs(m, 4, 8));
    EXPECT_EQ(m.nnz(), 16u * 32u / 2u); // Exactly 4 per tile of 8.
}

TEST(TsMask, KeepsTileTopScores)
{
    Matrix s(1, 8, {0.9f, 0.1f, 0.8f, 0.2f, 0.7f, 0.3f, 0.6f, 0.4f});
    const Mask m = tsMask(s, 2, 8);
    EXPECT_EQ(m.at(0, 0), 1);
    EXPECT_EQ(m.at(0, 2), 1);
    EXPECT_EQ(m.nnz(), 2u);
}

TEST(TsMask, RejectsNonDivisible)
{
    const Matrix s = randomScores(8, 12, 4);
    EXPECT_THROW(tsMask(s, 4, 8), FatalError);
}

TEST(RsvMask, PerRowUniformNAndNearTarget)
{
    const Matrix s = randomScores(64, 64, 5);
    const auto cand = defaultCandidates(8);
    const Mask m = rsvMask(s, 0.5, 8, cand);

    // Every row must use one N from the candidate set across all its
    // tiles (VEGETA's constraint).
    for (size_t r = 0; r < 64; ++r) {
        size_t max_tile = 0;
        for (size_t t = 0; t < 64; t += 8) {
            size_t nnz = 0;
            for (size_t i = 0; i < 8; ++i)
                nnz += m.at(r, t + i);
            max_tile = std::max(max_tile, nnz);
        }
        bool is_candidate = false;
        for (uint8_t c : cand)
            is_candidate |= c == max_tile;
        EXPECT_TRUE(is_candidate) << "row " << r;
    }
    EXPECT_NEAR(m.sparsity(), 0.5, 0.03);
}

TEST(RshMask, NearTargetAndRowStructured)
{
    const Matrix s = randomScores(64, 128, 6);
    const auto cand = defaultCandidates(8);
    const Mask m = rshMask(s, 0.6, 8, cand);
    EXPECT_NEAR(m.sparsity(), 0.6, 0.04);
    // Tiles are either empty, half-dense, or dense.
    for (size_t r = 0; r < 64; ++r) {
        for (size_t t = 0; t < 128; t += 8) {
            size_t nnz = 0;
            for (size_t i = 0; i < 8; ++i)
                nnz += m.at(r, t + i);
            EXPECT_TRUE(nnz == 0 || nnz == 4 || nnz == 8)
                << "row " << r << " tile " << t << " nnz " << nnz;
        }
    }
}

TEST(TbsMask, SatisfiesStructuralInvariant)
{
    const Matrix s = randomScores(64, 64, 7);
    const auto cand = defaultCandidates(8);
    const TbsResult res = tbsMask(s, 0.5, 8, cand);
    EXPECT_TRUE(validateTbs(res.mask, res.meta));
    EXPECT_EQ(res.meta.blockRows, 8u);
    EXPECT_EQ(res.meta.blockCols, 8u);
}

TEST(TbsMask, HitsTargetSparsity)
{
    const Matrix s = randomScores(128, 128, 8);
    const auto cand = defaultCandidates(8);
    for (double sp : {0.3, 0.5, 0.75}) {
        const TbsResult res = tbsMask(s, sp, 8, cand);
        EXPECT_NEAR(res.mask.sparsity(), sp, 0.02) << sp;
    }
}

TEST(TbsMask, EachGroupKeepsExactlyN)
{
    const Matrix s = randomScores(32, 32, 9);
    const auto cand = defaultCandidates(8);
    const TbsResult res = tbsMask(s, 0.5, 8, cand);
    for (size_t br = 0; br < res.meta.blockRows; ++br) {
        for (size_t bc = 0; bc < res.meta.blockCols; ++bc) {
            const BlockInfo &info = res.meta.block(br, bc);
            for (size_t g = 0; g < 8; ++g) {
                size_t nnz = 0;
                for (size_t e = 0; e < 8; ++e) {
                    const size_t r =
                        info.dim == SparsityDim::Reduction ? g : e;
                    const size_t c =
                        info.dim == SparsityDim::Reduction ? e : g;
                    nnz += res.mask.at(br * 8 + r, bc * 8 + c);
                }
                EXPECT_EQ(nnz, info.n);
            }
        }
    }
}

TEST(TbsMask, UsesBothDirections)
{
    // On heavy-tailed scores at 50% sparsity, TBS should exercise both
    // the reduction and the independent direction.
    const Matrix s = randomScores(128, 128, 10);
    const auto cand = defaultCandidates(8);
    const TbsResult res = tbsMask(s, 0.5, 8, cand);
    size_t row_dir = 0;
    size_t col_dir = 0;
    for (const auto &b : res.meta.blocks) {
        if (b.n > 0 && b.n < 8) {
            row_dir += b.dim == SparsityDim::Reduction;
            col_dir += b.dim == SparsityDim::Independent;
        }
    }
    EXPECT_GT(row_dir, 0u);
    EXPECT_GT(col_dir, 0u);
}

TEST(TbsMask, CloserToUsThanTs)
{
    // The motivating claim: TBS's mask overlaps US far more than TS's.
    const Matrix s = randomScores(128, 128, 11);
    const auto cand = defaultCandidates(8);
    const Mask us = usMask(s, 0.5);
    const Mask ts = tsMask(s, 4, 8);
    const TbsResult tbs = tbsMask(s, 0.5, 8, cand);
    EXPECT_GT(tbs.mask.overlap(us), ts.overlap(us));
}

TEST(TbsMask, DirectionChoiceMinimizesL1)
{
    // Forcing all blocks to the reduction direction must not beat the
    // chosen masks in L1 distance to the unstructured mask.
    const Matrix s = randomScores(64, 64, 12);
    const auto cand = defaultCandidates(8);
    const Mask us = usMask(s, 0.5);
    const TbsResult res = tbsMask(s, 0.5, 8, cand);

    // Distance of chosen TBS mask.
    const size_t chosen_dist = us.hamming(res.mask);

    // Distance if every block used the reduction direction with the
    // same per-block N: rebuild via tsMask-like per-block top-N.
    Mask forced(64, 64);
    for (size_t br = 0; br < res.meta.blockRows; ++br) {
        for (size_t bc = 0; bc < res.meta.blockCols; ++bc) {
            const uint8_t n = res.meta.block(br, bc).n;
            for (size_t r = 0; r < 8; ++r) {
                // Top-n of this block row.
                std::vector<std::pair<float, size_t>> vals;
                for (size_t c = 0; c < 8; ++c)
                    vals.emplace_back(s.at(br * 8 + r, bc * 8 + c), c);
                std::sort(vals.begin(), vals.end(),
                          [](auto &a, auto &b) {
                              if (a.first != b.first)
                                  return a.first > b.first;
                              return a.second < b.second;
                          });
                for (size_t k = 0; k < n; ++k)
                    forced.at(br * 8 + r, bc * 8 + vals[k].second) = 1;
            }
        }
    }
    const size_t forced_dist = us.hamming(forced);
    EXPECT_LE(chosen_dist, forced_dist);
}

TEST(PatternMask, DispatchesAllPatterns)
{
    const Matrix s = randomScores(64, 64, 13);
    const auto cand = defaultCandidates(8);
    for (Pattern p : {Pattern::Dense, Pattern::US, Pattern::TS,
                      Pattern::RSV, Pattern::RSH, Pattern::TBS}) {
        const Mask m = patternMask(p, s, 0.5, 8, cand);
        if (p == Pattern::Dense)
            EXPECT_EQ(m.nnz(), 64u * 64u);
        else
            EXPECT_NEAR(m.sparsity(), 0.5, 0.05) << patternName(p);
    }
}

TEST(PatternMask, Deterministic)
{
    const Matrix s = randomScores(64, 64, 14);
    const auto cand = defaultCandidates(8);
    EXPECT_EQ(patternMask(Pattern::TBS, s, 0.5, 8, cand),
              patternMask(Pattern::TBS, s, 0.5, 8, cand));
}

TEST(Validate, DetectsViolations)
{
    Mask m(8, 8);
    for (size_t c = 0; c < 8; ++c)
        m.at(0, c) = 1; // 8 in one tile.
    EXPECT_FALSE(validateTs(m, 4, 8));

    TbsMeta meta;
    meta.m = 8;
    meta.blockRows = 1;
    meta.blockCols = 1;
    meta.blocks = {{2, SparsityDim::Reduction}};
    EXPECT_FALSE(validateTbs(m, meta));
}

TEST(DefaultCandidates, PowersOfTwoPlusZero)
{
    const auto c = defaultCandidates(8);
    EXPECT_EQ(c, (std::vector<uint8_t>{0, 1, 2, 4, 8}));
    const auto c16 = defaultCandidates(16);
    EXPECT_EQ(c16, (std::vector<uint8_t>{0, 1, 2, 4, 8, 16}));
}

} // namespace
