/**
 * @file
 * Unit tests for the typed command-line flag registry (util/flags).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/logging.hpp"

namespace {

using namespace tbstc::util;

/** argv builder: prepends the program + subcommand tokens. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args)
        : strings_(std::move(args))
    {
        strings_.insert(strings_.begin(), {"tbstc", "sub"});
        for (auto &s : strings_)
            ptrs_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

TEST(Flags, ParsesTypedValuesAndDefaults)
{
    std::string name = "default";
    double ratio = 0.5;
    uint64_t count = 7;
    bool verbose = false;
    FlagSet flags("sub");
    flags.option("name", &name, "S", "a string")
        .option("ratio", &ratio, "R", "a double")
        .option("count", &count, "N", "an integer")
        .flag("verbose", &verbose, "a switch");

    Argv a({"--name", "alice", "--ratio", "0.75", "--verbose"});
    const auto r = flags.parse(a.argc(), a.argv());
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(name, "alice");
    EXPECT_DOUBLE_EQ(ratio, 0.75);
    EXPECT_EQ(count, 7u); // Untouched default.
    EXPECT_TRUE(verbose);
    EXPECT_TRUE(flags.seen("name"));
    EXPECT_FALSE(flags.seen("count"));
}

TEST(Flags, ReportsUnknownFlag)
{
    FlagSet flags("sub");
    Argv a({"--bogus"});
    const auto r = flags.parse(a.argc(), a.argv());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, FlagErrorKind::UnknownFlag);
    EXPECT_EQ(r.error().flag, "bogus");
}

TEST(Flags, ReportsBadNumericValue)
{
    double d = 0.0;
    uint64_t u = 0;
    FlagSet flags("sub");
    flags.option("d", &d, "R", "").option("u", &u, "N", "");

    Argv bad_d({"--d", "not-a-number"});
    auto r = flags.parse(bad_d.argc(), bad_d.argv());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, FlagErrorKind::BadValue);

    Argv trailing({"--d", "1.5x"});
    r = flags.parse(trailing.argc(), trailing.argv());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, FlagErrorKind::BadValue);

    Argv negative({"--u", "-3"});
    r = flags.parse(negative.argc(), negative.argv());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, FlagErrorKind::BadValue);
}

TEST(Flags, ReportsMissingValueAndMissingRequired)
{
    std::string s;
    FlagSet flags("sub");
    flags.option("s", &s, "S", "", /*required=*/true);

    Argv dangling({"--s"});
    auto r = flags.parse(dangling.argc(), dangling.argv());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, FlagErrorKind::MissingValue);

    Argv empty({});
    r = flags.parse(empty.argc(), empty.argv());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, FlagErrorKind::MissingRequired);
    EXPECT_EQ(r.error().flag, "s");
}

TEST(Flags, PositionalsFillInOrder)
{
    std::string first;
    std::string second;
    FlagSet flags("sub");
    flags.positional("FIRST", &first, "")
        .positional("SECOND", &second, "", /*required=*/false);

    Argv a({"one", "two"});
    ASSERT_TRUE(flags.parse(a.argc(), a.argv()).ok());
    EXPECT_EQ(first, "one");
    EXPECT_EQ(second, "two");

    FlagSet flags2("sub");
    flags2.positional("FIRST", &first, "");
    Argv extra({"one", "surplus"});
    const auto r = flags2.parse(extra.argc(), extra.argv());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind, FlagErrorKind::UnexpectedPositional);

    FlagSet flags3("sub");
    flags3.positional("FIRST", &first, "");
    Argv none({});
    const auto r3 = flags3.parse(none.argc(), none.argv());
    ASSERT_FALSE(r3.ok());
    EXPECT_EQ(r3.error().kind, FlagErrorKind::MissingPositional);
}

TEST(Flags, HelpTokenShortCircuits)
{
    std::string s;
    FlagSet flags("sub");
    flags.option("s", &s, "S", "", /*required=*/true);
    // --help wins even though the required flag is absent.
    Argv a({"--help"});
    ASSERT_TRUE(flags.parse(a.argc(), a.argv()).ok());
    EXPECT_TRUE(flags.helpRequested());
}

TEST(Flags, HelpListsEveryRegisteredFlag)
{
    std::string s;
    bool b = false;
    std::string pos;
    FlagSet flags("sub", "A one-line summary.");
    flags.positional("FILE", &pos, "the input file");
    flags.option("opt", &s, "VAL", "an option", /*required=*/true);
    flags.flag("switch", &b, "a switch");
    const std::string help = flags.help();
    EXPECT_NE(help.find("usage: tbstc sub FILE [options]"),
              std::string::npos)
        << help;
    EXPECT_NE(help.find("A one-line summary."), std::string::npos);
    EXPECT_NE(help.find("--opt VAL"), std::string::npos);
    EXPECT_NE(help.find("(required)"), std::string::npos);
    EXPECT_NE(help.find("--switch"), std::string::npos);
    EXPECT_NE(help.find("the input file"), std::string::npos);
}

TEST(Flags, ValuesMayBeginWithDash)
{
    // A valued option consumes the next token verbatim, so file names
    // or negative numbers that start with '-' (not "--") parse fine.
    std::string out;
    double d = 0.0;
    FlagSet flags("sub");
    flags.option("out", &out, "F", "").option("d", &d, "R", "");
    Argv a({"--out", "-dashfile", "--d", "-2.5"});
    ASSERT_TRUE(flags.parse(a.argc(), a.argv()).ok());
    EXPECT_EQ(out, "-dashfile");
    EXPECT_DOUBLE_EQ(d, -2.5);
}

TEST(Flags, DuplicateRegistrationPanics)
{
    bool b = false;
    FlagSet flags("sub");
    flags.flag("twice", &b, "");
    EXPECT_THROW(flags.flag("twice", &b, ""), PanicError);
}

TEST(Flags, ErrorNamesAreStable)
{
    EXPECT_STREQ(flagErrorName(FlagErrorKind::UnknownFlag),
                 "UnknownFlag");
    EXPECT_STREQ(flagErrorName(FlagErrorKind::BadValue), "BadValue");
    EXPECT_STREQ(flagErrorName(FlagErrorKind::MissingRequired),
                 "MissingRequired");
}

} // namespace
