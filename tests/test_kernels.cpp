/**
 * @file
 * Cross-ISA equivalence suite for the dispatched kernel backend.
 *
 * The scalar kernels are the specification: every other ISA level the
 * host can run must be bit-identical on every input, including empty
 * and non-multiple-of-vector-width tails. The suite exercises each
 * reachable level two ways: the raw tables side by side (via
 * kernelTableFor, no global state), and the full library paths
 * (masking, DDC serialization, CRC) under setIsa with golden hashes
 * pinning that the bytes produced do not depend on the machine.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/serialize.hpp"
#include "kernels/kernels.hpp"
#include "util/crc32.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;
using kernels::Isa;
using kernels::KernelTable;

/** Every level this host can run beyond scalar. */
std::vector<const KernelTable *>
vectorLevels()
{
    std::vector<const KernelTable *> out;
    for (Isa isa : kernels::supportedIsas())
        if (isa != Isa::Scalar)
            out.push_back(kernels::kernelTableFor(isa));
    return out;
}

/** Restores the dispatched level even when a test fails mid-way. */
struct IsaGuard
{
    Isa saved = kernels::activeIsa();
    ~IsaGuard() { kernels::setIsa(saved); }
};

uint64_t
fnv(const uint8_t *p, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

TEST(KernelDispatch, ScalarAlwaysAvailable)
{
    ASSERT_NE(kernels::kernelTableFor(Isa::Scalar), nullptr);
    EXPECT_TRUE(kernels::isaSupported(Isa::Scalar));
    const auto levels = kernels::supportedIsas();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), Isa::Scalar);
    EXPECT_TRUE(kernels::isaSupported(kernels::bestSupportedIsa()));
}

TEST(KernelDispatch, ParseNames)
{
    Isa isa = Isa::Scalar;
    EXPECT_TRUE(kernels::parseIsa("scalar", isa));
    EXPECT_EQ(isa, Isa::Scalar);
    EXPECT_TRUE(kernels::parseIsa("native", isa));
    EXPECT_EQ(isa, kernels::bestSupportedIsa());
    EXPECT_FALSE(kernels::parseIsa("sse9", isa));
    EXPECT_FALSE(kernels::parseIsa("", isa));
    for (Isa level : kernels::supportedIsas()) {
        Isa back = Isa::Scalar;
        ASSERT_TRUE(kernels::parseIsa(kernels::isaName(level), back));
        EXPECT_EQ(back, level);
    }
}

TEST(KernelDispatch, SetIsaSwitchesAndRejects)
{
    IsaGuard guard;
    for (Isa level : kernels::supportedIsas()) {
        ASSERT_TRUE(kernels::setIsa(level));
        EXPECT_EQ(kernels::activeIsa(), level);
        EXPECT_EQ(kernels::active().isa, level);
    }
    // Every unreachable level must be refused without changing state.
    for (int raw = 0; raw <= 3; ++raw) {
        const Isa level = static_cast<Isa>(raw);
        if (kernels::isaSupported(level))
            continue;
        const Isa before = kernels::activeIsa();
        EXPECT_FALSE(kernels::setIsa(level));
        EXPECT_EQ(kernels::activeIsa(), before);
    }
}

TEST(KernelEquivalence, PopcountFamily)
{
    const auto levels = vectorLevels();
    const KernelTable *s = kernels::kernelTableFor(Isa::Scalar);
    std::mt19937_64 rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        // Sizes straddle every vector width boundary, including 0.
        const size_t n = static_cast<size_t>(rng() % 70);
        std::vector<uint64_t> a(n), b(n), acc(n);
        for (auto &x : a)
            x = rng();
        for (auto &x : b)
            x = rng();
        for (auto &x : acc)
            x = rng() % 0x10;
        for (const KernelTable *t : levels) {
            EXPECT_EQ(t->popcount(a.data(), n), s->popcount(a.data(), n))
                << t->name << " n=" << n;
            EXPECT_EQ(t->popcountAnd(a.data(), b.data(), n),
                      s->popcountAnd(a.data(), b.data(), n))
                << t->name << " n=" << n;
            EXPECT_EQ(t->popcountXor(a.data(), b.data(), n),
                      s->popcountXor(a.data(), b.data(), n))
                << t->name << " n=" << n;

            auto c0 = a, c1 = a;
            s->andInplace(c0.data(), b.data(), n);
            t->andInplace(c1.data(), b.data(), n);
            EXPECT_EQ(c0, c1) << t->name << " and n=" << n;
            c0 = a;
            c1 = a;
            s->orInplace(c0.data(), b.data(), n);
            t->orInplace(c1.data(), b.data(), n);
            EXPECT_EQ(c0, c1) << t->name << " or n=" << n;
            c0 = a;
            c1 = a;
            s->xorInplace(c0.data(), b.data(), n);
            t->xorInplace(c1.data(), b.data(), n);
            EXPECT_EQ(c0, c1) << t->name << " xor n=" << n;

            auto a0 = acc, a1 = acc;
            s->bytePopcountAccum(a.data(), n, a0.data());
            t->bytePopcountAccum(a.data(), n, a1.data());
            EXPECT_EQ(a0, a1) << t->name << " bytePop n=" << n;
        }
    }
}

TEST(KernelEquivalence, Rank8x8)
{
    const auto levels = vectorLevels();
    const KernelTable *s = kernels::kernelTableFor(Isa::Scalar);
    std::mt19937_64 rng(43);
    for (int trial = 0; trial < 500; ++trial) {
        // Alternate tie-heavy and spread-out score distributions: the
        // tie-break (equal value, lower index wins) is where a vector
        // reformulation would diverge first.
        std::uniform_int_distribution<int> d(0, trial % 2 ? 5 : 1000);
        float blk[64];
        for (auto &v : blk)
            v = static_cast<float>(d(rng)) * 0.25f;
        uint16_t rr0[64], rc0[64], rr1[64], rc1[64];
        s->rank8x8(blk, rr0, rc0);
        for (const KernelTable *t : levels) {
            t->rank8x8(blk, rr1, rc1);
            EXPECT_EQ(0, std::memcmp(rr0, rr1, sizeof rr0))
                << t->name << " rows, trial " << trial;
            EXPECT_EQ(0, std::memcmp(rc0, rc1, sizeof rc0))
                << t->name << " cols, trial " << trial;
        }
    }
}

TEST(KernelEquivalence, PackUnpackIdx)
{
    const auto levels = vectorLevels();
    const KernelTable *s = kernels::kernelTableFor(Isa::Scalar);
    std::mt19937_64 rng(44);
    for (int trial = 0; trial < 300; ++trial) {
        const unsigned bits = 1 + static_cast<unsigned>(rng() % 8);
        const size_t n = static_cast<size_t>(rng() % 100);
        std::vector<uint8_t> vals(n);
        for (auto &v : vals)
            v = static_cast<uint8_t>(rng() & ((1u << bits) - 1));
        const size_t nbytes = (n * bits + 7) / 8;

        // Packed bytes must match exactly (the stream is CRC'd and
        // cached by content hash), not merely round-trip.
        std::vector<uint8_t> p0(nbytes, 0xAA), u0(n, 0xAA);
        s->packIdx(vals.data(), n, bits, p0.data());
        s->unpackIdx(p0.data(), n, bits, u0.data());
        EXPECT_EQ(u0, vals) << "scalar round-trip bits=" << bits;
        for (const KernelTable *t : levels) {
            std::vector<uint8_t> p1(nbytes, 0xAA), u1(n, 0xAA);
            t->packIdx(vals.data(), n, bits, p1.data());
            EXPECT_EQ(p0, p1)
                << t->name << " pack bits=" << bits << " n=" << n;
            t->unpackIdx(p0.data(), n, bits, u1.data());
            EXPECT_EQ(u1, vals)
                << t->name << " unpack bits=" << bits << " n=" << n;
        }
    }
}

TEST(KernelEquivalence, Crc32)
{
    const auto levels = vectorLevels();
    const KernelTable *s = kernels::kernelTableFor(Isa::Scalar);

    // The zlib check value pins the polynomial and reflection.
    const uint8_t kat[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(s->crc32(kat, sizeof kat, 0), 0xCBF43926u);
    EXPECT_EQ(s->crc32(nullptr, 0, 0x1234u), 0x1234u);

    std::mt19937_64 rng(45);
    for (int trial = 0; trial < 300; ++trial) {
        // Lengths cross the PCLMUL fold threshold (64) and its
        // 16-byte chunking in both directions.
        const size_t n = static_cast<size_t>(rng() % 300);
        const auto seed = static_cast<uint32_t>(rng());
        std::vector<uint8_t> bytes(n);
        for (auto &b : bytes)
            b = static_cast<uint8_t>(rng());
        const uint32_t want = s->crc32(bytes.data(), n, seed);
        for (const KernelTable *t : levels)
            EXPECT_EQ(t->crc32(bytes.data(), n, seed), want)
                << t->name << " n=" << n;

        // Chaining: crc(a+b) == crc(b, seed=crc(a)).
        const size_t cut = n / 2;
        const uint32_t head = s->crc32(bytes.data(), cut, seed);
        for (const KernelTable *t : levels)
            EXPECT_EQ(t->crc32(bytes.data() + cut, n - cut, head), want)
                << t->name << " chained n=" << n;
    }
}

/**
 * The full library paths under every reachable level: masks, the
 * serialized DDC stream, and util::crc32 must be byte-identical
 * regardless of the dispatched ISA. The FNV hash of the scalar run is
 * the reference; test_core_mask_golden pins scalar against the
 * original pre-kernel implementation, so together these pin every
 * level to the original bytes.
 */
TEST(KernelGolden, MaskAndStreamBytesAreIsaInvariant)
{
    IsaGuard guard;
    const auto w = workload::synthWeights({"kern-golden", 64, 96, 1}, 7);
    const auto scores = core::magnitudeScores(w);

    uint64_t maskHash = 0, streamHash = 0;
    uint32_t streamCrc = 0;
    bool first = true;
    for (Isa level : kernels::supportedIsas()) {
        ASSERT_TRUE(kernels::setIsa(level));
        const auto tbs = core::tbsMask(scores, 0.5, 8,
                                       core::defaultCandidates(8));
        const auto maskBytes = tbs.mask.toBytes();
        const auto stream = format::serializeDdc(w, tbs.mask, tbs.meta);
        const uint64_t mh = fnv(maskBytes.data(), maskBytes.size());
        const uint64_t sh = fnv(stream.data(), stream.size());
        const uint32_t sc = util::crc32(stream, 0);
        const auto parsed = format::tryDeserializeDdc(stream);
        ASSERT_TRUE(parsed.ok()) << kernels::isaName(level);
        if (first) {
            maskHash = mh;
            streamHash = sh;
            streamCrc = sc;
            first = false;
        } else {
            EXPECT_EQ(mh, maskHash) << kernels::isaName(level);
            EXPECT_EQ(sh, streamHash) << kernels::isaName(level);
            EXPECT_EQ(sc, streamCrc) << kernels::isaName(level);
        }
    }
}

/**
 * Truncation sweep of the bit-packed index section under every level:
 * the batch BitReader's bounds check must fire identically whichever
 * ISA unpacks the stream (the fault-injection harness proper runs in
 * test_format_fault under the dispatched level).
 */
TEST(KernelGolden, TruncatedIndexSectionFailsUnderEveryIsa)
{
    IsaGuard guard;
    const auto w = workload::synthWeights({"kern-fault", 64, 64, 1}, 9);
    const auto tbs = core::tbsMask(core::magnitudeScores(w), 0.5, 8,
                                   core::defaultCandidates(8));
    const auto stream = format::serializeDdc(w, tbs.mask, tbs.meta);
    for (Isa level : kernels::supportedIsas()) {
        ASSERT_TRUE(kernels::setIsa(level));
        for (size_t cut = 1; cut <= 16; ++cut) {
            std::vector<uint8_t> trunc(stream.begin(),
                                       stream.end() - cut);
            EXPECT_FALSE(format::tryDeserializeDdc(trunc).ok())
                << kernels::isaName(level) << " cut=" << cut;
        }
        EXPECT_TRUE(format::tryDeserializeDdc(stream).ok())
            << kernels::isaName(level);
    }
}

} // namespace
