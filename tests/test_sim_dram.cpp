/**
 * @file
 * Unit tests for the DRAM channel model.
 */

#include <gtest/gtest.h>

#include "sim/dram.hpp"

namespace {

using namespace tbstc::sim;
using tbstc::format::StreamProfile;

TEST(Dram, ContiguousNearPeak)
{
    ArchConfig cfg;
    const DramModel dram(cfg);
    const DramTransfer t = dram.streamContiguous(1 << 20);
    EXPECT_GT(t.utilisation(), 0.99);
    // 1 MiB at 64 B/cycle ~ 16384 cycles.
    EXPECT_NEAR(t.cycles, (1 << 20) / cfg.dramBytesPerCycle(), 64.0);
}

TEST(Dram, EmptyTransferFree)
{
    const DramModel dram(ArchConfig{});
    const DramTransfer t = dram.streamContiguous(0);
    EXPECT_EQ(t.busBytes, 0u);
    EXPECT_EQ(t.cycles, 0.0);
    EXPECT_DOUBLE_EQ(t.utilisation(), 1.0);
}

TEST(Dram, FragmentationHurts)
{
    const DramModel dram(ArchConfig{});
    StreamProfile contiguous{1 << 16, 1 << 16, 1};
    StreamProfile fragmented{1 << 16, 1 << 16, 4096}; // 16 B runs.
    const auto tc = dram.stream(contiguous);
    const auto tf = dram.stream(fragmented);
    EXPECT_GT(tf.busBytes, tc.busBytes);
    EXPECT_GT(tf.cycles, tc.cycles);
    EXPECT_LT(tf.utilisation(), 0.5);
    EXPECT_GT(tc.utilisation(), 0.95);
}

TEST(Dram, RedundancyHurtsUtilisation)
{
    const DramModel dram(ArchConfig{});
    // SDC-like: contiguous but 50% padding.
    StreamProfile padded{1 << 16, 1 << 15, 1};
    const auto t = dram.stream(padded);
    EXPECT_NEAR(t.utilisation(), 0.5, 0.02);
}

TEST(Dram, BandwidthScalesCycles)
{
    ArchConfig slow;
    slow.dramGbps = 64.0;
    ArchConfig fast;
    fast.dramGbps = 256.0;
    const auto ts = DramModel(slow).streamContiguous(1 << 20);
    const auto tf = DramModel(fast).streamContiguous(1 << 20);
    EXPECT_NEAR(ts.cycles / tf.cycles, 4.0, 0.01);
}

TEST(Dram, ShortRunsPayBurstPadding)
{
    const DramModel dram(ArchConfig{}, 32, 8);
    // 8-byte runs: each costs a 32 B burst + 8 B overhead = 40 B.
    StreamProfile tiny{8 * 100, 8 * 100, 100};
    const auto t = dram.stream(tiny);
    EXPECT_NEAR(t.utilisation(), 8.0 / 40.0, 0.01);
}

} // namespace
