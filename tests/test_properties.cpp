/**
 * @file
 * Cross-cutting parameterized property suites: serializer round trips
 * over the (sparsity x size) grid, accelerator-level invariants over
 * the full zoo, and scheduler/codec fuzzing over seeds.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "accel/accelerator.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/codec.hpp"
#include "format/serialize.hpp"
#include "sim/scheduler.hpp"
#include "util/fp16.hpp"
#include "util/rng.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;

// ---------------------------------------------------------------------
// Serializer sweep.
// ---------------------------------------------------------------------

class SerializeSweep
    : public ::testing::TestWithParam<std::tuple<double, size_t>>
{
};

TEST_P(SerializeSweep, RoundTripAcrossGrid)
{
    const auto [sparsity, dim] = GetParam();
    const auto w = workload::synthWeights(
        {"ser-sweep", dim, dim, 1}, 1000 + dim);
    const auto tbs = core::tbsMask(core::magnitudeScores(w), sparsity,
                                   8, core::defaultCandidates(8));
    const auto bytes = format::serializeDdc(w, tbs.mask, tbs.meta);
    const auto parsed = format::deserializeDdc(bytes);

    core::Matrix expect = core::applyMask(w, tbs.mask);
    for (auto &v : expect.data())
        v = util::fp16Round(v);
    EXPECT_EQ(parsed.matrix, expect);
    EXPECT_EQ(parsed.mask, tbs.mask);
}

std::string
serializeSweepName(
    const ::testing::TestParamInfo<std::tuple<double, size_t>> &info)
{
    return "s"
        + std::to_string(
            static_cast<int>(std::get<0>(info.param) * 1000))
        + "_d" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SerializeSweep,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.75, 0.875),
                       ::testing::Values(size_t{16}, size_t{64},
                                         size_t{136})),
    serializeSweepName);

// ---------------------------------------------------------------------
// Accelerator invariants over the zoo.
// ---------------------------------------------------------------------

class ZooInvariants : public ::testing::TestWithParam<accel::AccelKind>
{
};

TEST_P(ZooInvariants, SanityOfEveryRun)
{
    const auto kind = GetParam();
    accel::RunRequest req;
    req.shape = workload::GemmShape{"zoo", 256, 256, 64};
    req.sparsity = 0.625;
    const auto s = accel::runLayer(kind, req);
    EXPECT_GT(s.cycles, 0.0);
    EXPECT_GT(s.energy.totalJ(), 0.0);
    EXPECT_GT(s.edp, 0.0);
    EXPECT_LE(s.computeUtilisation, 1.0 + 1e-9);
    EXPECT_LE(s.bwUtilisation, 1.0 + 1e-9);
    EXPECT_LE(s.schedUtilisation, 1.0 + 1e-9);
    EXPECT_NEAR(s.breakdown.total, s.cycles, 1e-6);
}

TEST_P(ZooInvariants, MoreSparsityNeverSlower)
{
    const auto kind = GetParam();
    if (kind == accel::AccelKind::STC)
        return; // Hard-wired 4:8 ignores the requested degree.
    double prev = 1e300;
    for (double sp : {0.25, 0.5, 0.75, 0.875}) {
        accel::RunRequest req;
        req.shape = workload::GemmShape{"zoo-mono", 256, 256, 128};
        req.sparsity = sp;
        const auto s = accel::runLayer(kind, req);
        EXPECT_LE(s.cycles, prev * 1.02)
            << accel::accelName(kind) << " at " << sp;
        prev = s.cycles;
    }
}

std::string
zooName(const ::testing::TestParamInfo<accel::AccelKind> &info)
{
    std::string name = accel::accelName(info.param);
    std::erase(name, '-');
    std::erase(name, '+');
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooInvariants,
    ::testing::Values(accel::AccelKind::TC, accel::AccelKind::STC,
                      accel::AccelKind::Vegeta,
                      accel::AccelKind::HighLight,
                      accel::AccelKind::RmStc, accel::AccelKind::Sgcn,
                      accel::AccelKind::TbStc,
                      accel::AccelKind::TbStcFan),
    zooName);

// ---------------------------------------------------------------------
// Scheduler fuzz.
// ---------------------------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SchedulerFuzz, AwareDominatesAndBoundsHold)
{
    util::Rng rng(GetParam());
    const size_t n = 64 + rng.below(512);
    const size_t pes = 1 + rng.below(128);
    std::vector<uint64_t> costs(n);
    uint64_t total = 0;
    uint64_t biggest = 0;
    for (auto &c : costs) {
        c = rng.below(17);
        total += c;
        biggest = std::max(biggest, c);
    }
    const auto naive =
        sim::scheduleBlocks(costs, pes, sim::InterSched::Naive, 8);
    const auto aware =
        sim::scheduleBlocks(costs, pes, sim::InterSched::Aware, 8);
    EXPECT_LE(aware.makespan, naive.makespan);
    for (const auto &r : {naive, aware}) {
        EXPECT_GE(r.makespan, (total + pes - 1) / pes);
        EXPECT_GE(r.makespan, biggest);
        EXPECT_LE(r.utilisation, 1.0 + 1e-9);
        EXPECT_DOUBLE_EQ(r.busyBeats, static_cast<double>(total));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// ---------------------------------------------------------------------
// Codec fuzz: arbitrary legal blocks always convert losslessly.
// ---------------------------------------------------------------------

class CodecFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CodecFuzz, ConversionIsLossless)
{
    util::Rng rng(GetParam());
    std::vector<format::StorageElem> storage;
    float v = 1.0f;
    for (uint8_t col = 0; col < 8; ++col) {
        const size_t n = rng.below(9);
        const auto rows = rng.permutation(8);
        for (size_t k = 0; k < n; ++k)
            storage.push_back(
                {v++, static_cast<uint8_t>(rows[k]), col});
    }
    const auto out = format::convertToComputation(storage, {8, 2, 2});
    ASSERT_EQ(out.values.size(), storage.size());
    std::multiset<std::tuple<float, uint8_t, uint8_t>> in_set;
    std::multiset<std::tuple<float, uint8_t, uint8_t>> out_set;
    for (const auto &e : storage)
        in_set.emplace(e.value, e.rid, e.iid);
    for (size_t i = 0; i < out.values.size(); ++i)
        out_set.emplace(out.values[i], out.rids[i], out.iids[i]);
    EXPECT_EQ(in_set, out_set);
    if (!storage.empty())
        EXPECT_GE(out.cycles, (storage.size() + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range(uint64_t{100}, uint64_t{112}));

} // namespace
