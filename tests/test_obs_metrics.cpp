/**
 * @file
 * Unit tests for the observability layer (src/obs): the determinism
 * contract of the metrics registry, the JSON export shape, the
 * runtime enable guards, and the Chrome-trace event schema.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace {

using namespace tbstc;

/** Fresh metric state with recording on; restores "off" on exit. */
class ObsMetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setMetricsEnabled(true);
        if (!obs::metricsEnabled())
            GTEST_SKIP() << "obs compiled out (TBSTC_OBS=OFF)";
        obs::resetMetrics();
    }

    void
    TearDown() override
    {
        obs::resetMetrics();
        obs::setMetricsEnabled(false);
    }
};

/** The mixed-metric workload used by the determinism tests. */
void
recordWorkload(size_t n)
{
    static const obs::Counter items = obs::counter("test.det.items");
    static const obs::Counter bytes = obs::counter("test.det.bytes");
    static const obs::Gauge peak = obs::gauge("test.det.peak");
    static const obs::Histogram sizes =
        obs::histogram("test.det.sizes", 0.0, 64.0, 8);
    util::parallelFor(n, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
            items.add();
            bytes.add(i * 3);
            peak.record(static_cast<int64_t>(i));
            sizes.observe(static_cast<double>(i % 64));
        }
    });
}

TEST_F(ObsMetricsTest, ExportIsBitIdenticalAcrossThreadCounts)
{
    std::vector<std::string> exports;
    for (const size_t threads : {1u, 2u, 8u}) {
        obs::resetMetrics();
        const util::ThreadScope scope(threads);
        recordWorkload(256);
        exports.push_back(obs::metricsJson());
    }
    EXPECT_EQ(exports[0], exports[1]);
    EXPECT_EQ(exports[0], exports[2]);
    EXPECT_NE(exports[0].find("\"test.det.items\": 256"),
              std::string::npos)
        << exports[0];
}

TEST_F(ObsMetricsTest, CounterSumsAcrossThreads)
{
    static const obs::Counter c = obs::counter("test.sum.counter");
    const util::ThreadScope scope(4);
    util::parallelFor(100, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            c.add(2);
    });
    EXPECT_NE(obs::metricsJson().find("\"test.sum.counter\": 200"),
              std::string::npos);
}

TEST_F(ObsMetricsTest, GaugeMergesAsMaximum)
{
    static const obs::Gauge g = obs::gauge("test.max.gauge");
    const util::ThreadScope scope(4);
    util::parallelFor(64, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            g.record(static_cast<int64_t>(i * 10));
    });
    EXPECT_NE(obs::metricsJson().find("\"test.max.gauge\": 630"),
              std::string::npos);
}

TEST_F(ObsMetricsTest, HistogramClampsEdgesAndDropsNan)
{
    static const obs::Histogram h =
        obs::histogram("test.edge.hist", 0.0, 8.0, 4);
    h.observe(-100.0);                  // Clamps to bucket 0.
    h.observe(0.5);                     // Bucket 0.
    h.observe(1e9);                     // Clamps to the top bucket.
    h.observe(8.0);                     // hi is exclusive: top bucket.
    h.observe(std::nan(""));            // Dropped entirely.
    const std::string json = obs::metricsJson();
    EXPECT_NE(json.find("\"test.edge.hist\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\": [2, 0, 0, 2]"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"total\": 4"), std::string::npos);
}

TEST_F(ObsMetricsTest, DisabledRecordingIsANoOp)
{
    static const obs::Counter c = obs::counter("test.off.counter");
    obs::setMetricsEnabled(false);
    EXPECT_FALSE(obs::metricsEnabled());
    c.add(5);
    obs::setMetricsEnabled(true);
    EXPECT_NE(obs::metricsJson().find("\"test.off.counter\": 0"),
              std::string::npos);
}

TEST_F(ObsMetricsTest, KeysAreSortedByName)
{
    // Register in anti-alphabetical order; export must sort.
    obs::counter("test.zz.last").add();
    obs::counter("test.aa.first").add();
    obs::counter("test.mm.middle").add();
    const std::string json = obs::metricsJson();
    const size_t a = json.find("test.aa.first");
    const size_t m = json.find("test.mm.middle");
    const size_t z = json.find("test.zz.last");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, m);
    EXPECT_LT(m, z);
}

TEST_F(ObsMetricsTest, HostDomainIsExcludedByDefault)
{
    static const obs::Counter host =
        obs::counter("test.hostonly.counter", obs::Domain::Host);
    host.add(7);
    const std::string plain = obs::metricsJson();
    EXPECT_EQ(plain.find("test.hostonly.counter"), std::string::npos)
        << plain;
    EXPECT_EQ(plain.find("\"host\""), std::string::npos);
    const std::string with_host = obs::metricsJson(/*includeHost=*/true);
    EXPECT_NE(with_host.find("\"host\""), std::string::npos);
    EXPECT_NE(with_host.find("\"test.hostonly.counter\": 7"),
              std::string::npos)
        << with_host;
}

TEST_F(ObsMetricsTest, ResetZeroesValuesButKeepsRegistrations)
{
    static const obs::Counter c = obs::counter("test.reset.counter");
    c.add(9);
    obs::resetMetrics();
    EXPECT_NE(obs::metricsJson().find("\"test.reset.counter\": 0"),
              std::string::npos);
}

TEST_F(ObsMetricsTest, RegistrationIsIdempotent)
{
    const obs::Counter a = obs::counter("test.idem.counter");
    const obs::Counter b = obs::counter("test.idem.counter");
    a.add(1);
    b.add(2);
    EXPECT_NE(obs::metricsJson().find("\"test.idem.counter\": 3"),
              std::string::npos);
}

TEST(ObsTrace, ChromeTraceCarriesRequiredEventFields)
{
    obs::setTracingEnabled(true);
    if (!obs::tracingEnabled())
        GTEST_SKIP() << "obs compiled out (TBSTC_OBS=OFF)";
    obs::resetTrace();
    {
        const obs::ScopedSpan span("test.host.span");
    }
    const uint64_t track = obs::simTrack("test sim track");
    ASSERT_NE(track, 0u);
    obs::simLaneName(track, 1, "lane.one");
    obs::simSpan(track, 1, "test.sim.span", 100.0, 50.0);
    obs::simInstant(track, 2, "test.sim.instant", 125.0);
    const std::string json = obs::chromeTraceJson();
    obs::setTracingEnabled(false);
    obs::resetTrace();

    // Document shape + event schema (name/ph/ts/pid/tid).
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"otherData\""), std::string::npos);
    EXPECT_NE(json.find("\"schema\": \"tbstc.trace.v1\""),
              std::string::npos);
    for (const char *field : {"\"name\"", "\"ph\"", "\"ts\"",
                              "\"pid\"", "\"tid\""})
        EXPECT_NE(json.find(field), std::string::npos) << field;
    // The complete host span, the sim span, and the instant.
    EXPECT_NE(json.find("\"test.host.span\", \"ph\": \"X\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"test.sim.span\", \"ph\": \"X\", "
                        "\"ts\": 100.000, \"dur\": 50.000"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"test.sim.instant\", \"ph\": \"i\""),
              std::string::npos);
    // Instants carry the thread scope field.
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    // Track labels are thread_name metadata on the sim pid.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("{\"name\": \"test sim track\"}"),
              std::string::npos);
}

TEST(ObsTrace, DisabledTracerRecordsNothing)
{
    obs::setTracingEnabled(false);
    obs::resetTrace();
    {
        const obs::ScopedSpan span("test.invisible");
    }
    obs::simSpan(obs::simTrack("nope"), 1, "test.invisible.sim", 0, 1);
    const std::string json = obs::chromeTraceJson();
    EXPECT_EQ(json.find("test.invisible"), std::string::npos);
}

} // namespace
