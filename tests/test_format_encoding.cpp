/**
 * @file
 * Unit tests for the sparse storage formats (Dense/SDC/CSR/DDC/Bitmap).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/encoding.hpp"
#include "util/rng.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc::core;
using namespace tbstc::format;
using tbstc::util::Rng;

struct Fixture
{
    Matrix w;
    Matrix scores;
    Mask us;
    TbsResult tbs;

    explicit Fixture(uint64_t seed, size_t rows = 64, size_t cols = 64,
                     double sparsity = 0.5)
    {
        w = tbstc::workload::synthWeights(
            {"fmt-probe", rows, cols, 1}, seed);
        scores = magnitudeScores(w);
        us = usMask(scores, sparsity);
        tbs = tbsMask(scores, sparsity, 8, defaultCandidates(8));
    }
};

TEST(DenseEncoding, RoundTripAndBytes)
{
    Fixture f(1);
    const auto enc = encodeDense(f.w);
    EXPECT_EQ(enc->format(), StorageFormat::Dense);
    EXPECT_EQ(enc->decode(), f.w);
    EXPECT_EQ(enc->storageBytes(), 64u * 64u * 2u);
}

TEST(DenseEncoding, StreamIsFullyUseful)
{
    Fixture f(2);
    const auto p = encodeDense(f.w)->streamProfile(8);
    EXPECT_EQ(p.payloadBytes, p.usefulBytes);
    EXPECT_DOUBLE_EQ(p.redundancy(), 0.0);
    EXPECT_GT(p.segments, 1u); // Block walk breaks rows.
}

TEST(SdcEncoding, RoundTrip)
{
    Fixture f(3);
    const auto enc = encodeSdc(f.w, f.tbs.mask);
    EXPECT_EQ(enc->decode(), applyMask(f.w, f.tbs.mask));
}

TEST(SdcEncoding, PaddingRedundancyOnTbs)
{
    // TBS has non-uniform per-row occupancy, so SDC's row padding
    // creates redundant traffic (paper Fig. 7(a)); at 75% sparsity
    // the paper reports > 61% redundancy.
    Fixture f(4, 128, 128, 0.75);
    const auto p = encodeSdc(f.w, f.tbs.mask)->streamProfile(8);
    EXPECT_GT(p.redundancy(), 0.35);
    EXPECT_EQ(p.segments, 1u); // But fully contiguous.
}

TEST(SdcEncoding, NoPaddingOnUniformTs)
{
    // A fixed 4:8 tile mask gives every row identical occupancy: SDC
    // becomes padding-free (why STC ships it).
    Fixture f(5);
    const Mask ts = tsMask(f.scores, 4, 8);
    const auto p = encodeSdc(f.w, ts)->streamProfile(8);
    EXPECT_NEAR(p.redundancy(), 0.0, 1e-9);
}

TEST(CsrEncoding, RoundTrip)
{
    Fixture f(6);
    const auto enc = encodeCsr(f.w, f.tbs.mask);
    EXPECT_EQ(enc->decode(), applyMask(f.w, f.tbs.mask));
}

TEST(CsrEncoding, MinimalBytesButFragmented)
{
    Fixture f(7, 128, 128, 0.75);
    const auto csr = encodeCsr(f.w, f.tbs.mask)->streamProfile(8);
    const auto sdc = encodeSdc(f.w, f.tbs.mask)->streamProfile(8);
    // CSR carries fewer bytes than padded SDC...
    EXPECT_LT(csr.payloadBytes, sdc.payloadBytes);
    // ...but in thousands of short runs instead of one.
    EXPECT_GT(csr.segments, 1000u);
    EXPECT_LT(csr.avgSegmentBytes(), 64.0);
}

TEST(DdcEncoding, RoundTrip)
{
    Fixture f(8);
    const auto enc = encodeDdc(f.w, f.tbs.mask, f.tbs.meta);
    EXPECT_EQ(enc->decode(), applyMask(f.w, f.tbs.mask));
}

TEST(DdcEncoding, RoundTripAtHighSparsity)
{
    Fixture f(9, 64, 64, 0.875);
    const auto enc = encodeDdc(f.w, f.tbs.mask, f.tbs.meta);
    EXPECT_EQ(enc->decode(), applyMask(f.w, f.tbs.mask));
}

TEST(DdcEncoding, ContiguousAndUnpadded)
{
    Fixture f(10, 128, 128, 0.75);
    const auto p =
        encodeDdc(f.w, f.tbs.mask, f.tbs.meta)->streamProfile(8);
    EXPECT_DOUBLE_EQ(p.redundancy(), 0.0);
    EXPECT_EQ(p.segments, 2u);
}

TEST(DdcEncoding, SmallerThanSdcOnTbs)
{
    Fixture f(11, 128, 128, 0.75);
    const auto ddc = encodeDdc(f.w, f.tbs.mask, f.tbs.meta);
    const auto sdc = encodeSdc(f.w, f.tbs.mask);
    EXPECT_LT(ddc->storageBytes(), sdc->storageBytes());
}

TEST(DdcEncoding, InfoTableAccounted)
{
    // Storage must include the 16-bit info entry per block plus packed
    // 3-bit indices: check against a hand computation for a fully
    // dense "TBS" matrix (every block 8:8).
    Matrix w(16, 16);
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(i + 1);
    const Matrix scores = magnitudeScores(w);
    const TbsResult res = tbsMask(scores, 0.0, 8, defaultCandidates(8));
    const auto enc = encodeDdc(w, res.mask, res.meta);
    const uint64_t blocks = 4;
    const uint64_t values = 16 * 16 * 2;
    const uint64_t indices = (16 * 16 * 3 + 7) / 8;
    EXPECT_EQ(enc->storageBytes(), blocks * 2 + values + indices);
}

TEST(BitmapEncoding, RoundTrip)
{
    Fixture f(12);
    const auto enc = encodeBitmap(f.w, f.us);
    EXPECT_EQ(enc->decode(), applyMask(f.w, f.us));
}

TEST(BitmapEncoding, BytesAreValuesPlusBitmap)
{
    Fixture f(13);
    const auto enc = encodeBitmap(f.w, f.us);
    EXPECT_EQ(enc->storageBytes(),
              f.us.nnz() * 2 + (64 * 64 + 7) / 8);
    const auto p = enc->streamProfile(8);
    EXPECT_EQ(p.segments, 2u);
    EXPECT_DOUBLE_EQ(p.redundancy(), 0.0);
}

TEST(FormatName, AllNamed)
{
    EXPECT_EQ(formatName(StorageFormat::Dense), "Dense");
    EXPECT_EQ(formatName(StorageFormat::SDC), "SDC");
    EXPECT_EQ(formatName(StorageFormat::CSR), "CSR");
    EXPECT_EQ(formatName(StorageFormat::DDC), "DDC");
    EXPECT_EQ(formatName(StorageFormat::Bitmap), "Bitmap");
}

} // namespace
