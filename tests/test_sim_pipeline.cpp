/**
 * @file
 * Unit tests for the pipeline simulator and the area/energy model.
 */

#include <gtest/gtest.h>

#include "sim/energy.hpp"
#include "sim/pipeline.hpp"

namespace {

using namespace tbstc::sim;

/** Hand-built dense layer profile: every block 8:8. */
LayerProfile
denseProfile(uint64_t x, uint64_t y, uint64_t nb)
{
    LayerProfile p;
    p.x = x;
    p.y = y;
    p.nb = nb;
    p.m = 8;
    p.aNnz = x * y;
    p.blocks.assign(x / 8 * (y / 8), BlockTask{64, 8, false, 8});
    p.aStream = {x * y * 2, x * y * 2, 1};
    return p;
}

/** Uniform structured-sparse profile at density n/8. */
LayerProfile
sparseProfile(uint64_t x, uint64_t y, uint64_t nb, uint8_t n,
              bool independent = false)
{
    LayerProfile p = denseProfile(x, y, nb);
    const uint16_t nnz = n * 8;
    p.aNnz = x * y * n / 8;
    p.blocks.assign(x / 8 * (y / 8),
                    BlockTask{nnz, n, independent, 8});
    p.aStream = {p.aNnz * 2, p.aNnz * 2, 2};
    return p;
}

TEST(Pipeline, DenseComputeMatchesPeakThroughput)
{
    const LayerProfile layer = denseProfile(512, 512, 512);
    ArchConfig cfg;
    cfg.codecUnit = false;
    cfg.mbdUnit = false;
    const RunStats stats = simulateLayer(layer, cfg);
    const double ideal =
        layer.usefulMacs() / static_cast<double>(cfg.totalLanes());
    // Compute-bound dense GEMM should run near peak.
    EXPECT_NEAR(stats.breakdown.compute, ideal, ideal * 0.02);
    EXPECT_GT(stats.computeUtilisation, 0.95);
}

TEST(Pipeline, HalfDensityHalvesCompute)
{
    const LayerProfile dense = denseProfile(512, 512, 512);
    const LayerProfile half = sparseProfile(512, 512, 512, 4);
    const RunStats sd = simulateLayer(dense, ArchConfig{});
    const RunStats sh = simulateLayer(half, ArchConfig{});
    EXPECT_NEAR(sh.breakdown.compute / sd.breakdown.compute, 0.5, 0.02);
}

TEST(Pipeline, MemoryBoundWhenNbSmall)
{
    // Few B columns: fetching A dominates and the layer is
    // bandwidth-bound.
    const LayerProfile layer = denseProfile(1024, 1024, 8);
    const RunStats stats = simulateLayer(layer, ArchConfig{});
    EXPECT_GT(stats.breakdown.memory, stats.breakdown.compute);
}

TEST(Pipeline, EnergyTotalsAreSumOfParts)
{
    const LayerProfile layer = sparseProfile(256, 256, 128, 4);
    const RunStats stats = simulateLayer(layer, ArchConfig{});
    const auto &e = stats.energy;
    EXPECT_NEAR(e.totalJ(),
                e.computeJ + e.sramJ + e.dramJ + e.codecJ + e.mbdJ
                    + e.staticJ,
                1e-15);
    EXPECT_GT(e.computeJ, 0.0);
    EXPECT_GT(e.dramJ, 0.0);
    EXPECT_GT(e.staticJ, 0.0);
    EXPECT_DOUBLE_EQ(stats.edp, e.totalJ() * stats.seconds);
}

TEST(Pipeline, CodecWorkAccountedAndMostlyHidden)
{
    const LayerProfile layer = sparseProfile(256, 256, 128, 4, true);
    const RunStats stats = simulateLayer(layer, ArchConfig{});
    EXPECT_GT(stats.breakdown.codec, 0.0);
    // Conversion runs once per block while compute repeats nb times:
    // it must hide inside the pipeline (paper Fig. 14: ~3.6% exposed).
    EXPECT_EQ(stats.breakdown.codecExposed, 0.0);
    EXPECT_LT(stats.breakdown.codec, stats.breakdown.total);
    EXPECT_GT(stats.energy.codecJ, 0.0);
}

TEST(Pipeline, IndependentBlocksSlowWithoutAlternateUnit)
{
    const LayerProfile layer = sparseProfile(256, 256, 128, 2, true);
    ArchConfig with;
    ArchConfig without;
    without.alternateUnit = false;
    const RunStats sw = simulateLayer(layer, with);
    const RunStats so = simulateLayer(layer, without);
    EXPECT_GT(so.breakdown.compute, sw.breakdown.compute * 2.0);
}

TEST(Pipeline, Int8ShrinksTrafficAndComputeEnergy)
{
    const LayerProfile layer = sparseProfile(512, 512, 64, 4);
    RunOptions fp16;
    RunOptions int8;
    int8.int8Weights = true;
    const RunStats s16 = simulateLayer(layer, ArchConfig{}, {}, fp16);
    const RunStats s8 = simulateLayer(layer, ArchConfig{}, {}, int8);
    EXPECT_LT(s8.energy.computeJ, s16.energy.computeJ);
    EXPECT_LE(s8.breakdown.memory, s16.breakdown.memory);
}

TEST(Pipeline, AccumulateSumsRuns)
{
    const LayerProfile layer = sparseProfile(256, 256, 64, 4);
    const RunStats one = simulateLayer(layer, ArchConfig{});
    RunStats total;
    total.accumulate(one);
    total.accumulate(one);
    EXPECT_NEAR(total.cycles, 2.0 * one.cycles, 1e-9);
    EXPECT_NEAR(total.energy.totalJ(), 2.0 * one.energy.totalJ(),
                1e-15);
    EXPECT_NEAR(total.edp, 2.0 * one.energy.totalJ() * 2.0 * one.seconds,
                1e-15);
    EXPECT_NEAR(total.computeUtilisation, one.computeUtilisation, 1e-9);
}

TEST(AreaModel, MatchesTableIII)
{
    const AreaModel model{ArchConfig{}};
    const auto rows = model.components();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "DVPE Array");
    EXPECT_NEAR(rows[0].areaMm2, 1.43, 1e-9);
    EXPECT_NEAR(rows[0].powerMw, 197.71, 1e-9);
    EXPECT_NEAR(rows[1].areaMm2, 0.03, 1e-9);
    EXPECT_NEAR(rows[2].areaMm2, 0.01, 1e-9);
    EXPECT_NEAR(model.totalAreaMm2(), 1.47, 1e-9);
    EXPECT_NEAR(model.totalPowerMw(), 200.59, 1e-9);
}

TEST(AreaModel, A100OverheadMatchesPaper)
{
    const AreaModel model{ArchConfig{}};
    EXPECT_NEAR(model.addedAreaMm2(), 0.12, 1e-9);
    EXPECT_NEAR(model.a100OverheadFraction(), 0.0157, 2e-4);
}

TEST(AreaModel, FeaturesRemoveComponents)
{
    ArchConfig cfg;
    cfg.codecUnit = false;
    cfg.mbdUnit = false;
    const AreaModel model{cfg};
    EXPECT_EQ(model.components().size(), 1u);
    EXPECT_NEAR(model.totalAreaMm2(), 1.43, 1e-9);
}

TEST(EnergyCalibration, DvpePeakPowerMatchesTableIII)
{
    // 1024 MACs/cycle at 1 GHz: dynamic + static = 197.71 mW.
    const EnergyParams e;
    const double dynamic_mw = 1024.0 * e.macFp16Pj * 1e-12 * 1e9 * 1e3;
    EXPECT_NEAR(dynamic_mw + e.dvpeStaticMw, 197.71, 1.0);
}

} // namespace
