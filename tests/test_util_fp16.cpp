/**
 * @file
 * Unit tests for fp16 emulation and int8 fake-quantization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/fp16.hpp"
#include "util/rng.hpp"

namespace {

using namespace tbstc::util;

TEST(Fp16, ExactValuesRoundTrip)
{
    const float values[] = {0.0f,  1.0f,   -1.0f, 0.5f,  2.0f,
                            -4.5f, 1024.0f, 0.25f, 65504.0f};
    for (float v : values)
        EXPECT_EQ(fp16Round(v), v) << v;
}

TEST(Fp16, NegativeZeroPreservesSign)
{
    const float v = fp16ToFloat(fp16FromFloat(-0.0f));
    EXPECT_EQ(v, 0.0f);
    EXPECT_TRUE(std::signbit(v));
}

TEST(Fp16, OverflowToInfinity)
{
    EXPECT_TRUE(std::isinf(fp16Round(1e6f)));
    EXPECT_TRUE(std::isinf(fp16Round(-1e6f)));
    EXPECT_LT(fp16Round(-1e6f), 0.0f);
}

TEST(Fp16, NanPropagates)
{
    EXPECT_TRUE(std::isnan(
        fp16Round(std::numeric_limits<float>::quiet_NaN())));
}

TEST(Fp16, SubnormalsRepresentable)
{
    // Smallest positive fp16 subnormal: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(fp16Round(tiny), tiny);
    // Below half of it rounds to zero.
    EXPECT_EQ(fp16Round(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16
    // (1 + 2^-10); ties to even -> 1.0.
    const float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(fp16Round(halfway), 1.0f);
    // 1 + 3*2^-11 is halfway between odd and even mantissa; ties to
    // even -> 1 + 2^-9 ... verify it rounds *up* to the even mantissa.
    const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(fp16Round(halfway2), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Fp16, RelativeErrorBounded)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const auto v = static_cast<float>(rng.uniform(-100.0, 100.0));
        const float r = fp16Round(v);
        if (v != 0.0f)
            EXPECT_LE(std::fabs(r - v) / std::fabs(v), 1.0 / 1024.0);
    }
}

TEST(Fp16, RoundInPlace)
{
    std::vector<float> v{0.1f, 0.2f, 0.3f};
    fp16RoundInPlace(v);
    for (float x : v)
        EXPECT_EQ(x, fp16Round(x));
}

TEST(Int8Quant, RoundTripWithinScale)
{
    std::vector<float> v{-1.27f, 0.0f, 0.64f, 1.27f};
    const Int8Quant q = fitInt8(v);
    EXPECT_NEAR(q.scale, 0.01f, 1e-6);
    for (float x : v)
        EXPECT_NEAR(q.dequantize(q.quantize(x)), x, q.scale / 2 + 1e-7);
}

TEST(Int8Quant, SaturatesAtExtremes)
{
    Int8Quant q{0.01f};
    EXPECT_EQ(q.quantize(10.0f), 127);
    EXPECT_EQ(q.quantize(-10.0f), -127);
}

TEST(Int8Quant, AllZerosSafe)
{
    std::vector<float> v(8, 0.0f);
    const Int8Quant q = fitInt8(v);
    EXPECT_GT(q.scale, 0.0f);
    int8RoundInPlace(v);
    for (float x : v)
        EXPECT_EQ(x, 0.0f);
}

TEST(Int8Quant, FakeQuantBoundedError)
{
    Rng rng(5);
    std::vector<float> v(256);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    std::vector<float> orig = v;
    int8RoundInPlace(v);
    const Int8Quant q = fitInt8(orig);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(v[i], orig[i], q.scale / 2 + 1e-7);
}

} // namespace
