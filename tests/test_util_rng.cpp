/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using tbstc::util::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowIsUnbiasedAndBounded)
{
    Rng rng(11);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 70000; ++i) {
        const uint64_t v = rng.below(7);
        ASSERT_LT(v, 7u);
        ++counts[v];
    }
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 450);
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_THROW(rng.below(0), tbstc::util::PanicError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(3.0, 0.5);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, HeavyTailHasOutliers)
{
    Rng rng(19);
    int big = 0;
    for (int i = 0; i < 20000; ++i)
        big += std::fabs(rng.heavyTail(0.05, 8.0)) > 4.0;
    // A pure unit Gaussian would give ~0.006%; the mixture gives ~3%.
    EXPECT_GT(big, 200);
    EXPECT_LT(big, 2000);
}

TEST(Rng, PermutationIsValid)
{
    Rng rng(23);
    const auto p = rng.permutation(257);
    std::set<size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 257u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationShuffles)
{
    Rng rng(29);
    const auto p = rng.permutation(100);
    size_t fixed = 0;
    for (size_t i = 0; i < p.size(); ++i)
        fixed += p[i] == i;
    EXPECT_LT(fixed, 10u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

} // namespace
