/**
 * @file
 * Extended coverage: exhaustive fp16 round trip, element-granular
 * datapath modelling, codec cycle-estimator consistency, derived-meta
 * DDC on non-TBS masks, teacher datasets, RunStats scaling, and
 * model-table edge cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/codec.hpp"
#include "format/encoding.hpp"
#include "nn/dataset.hpp"
#include "sim/pipeline.hpp"
#include "util/fp16.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "workload/accuracy_model.hpp"
#include "workload/profile_builder.hpp"
#include "workload/synth.hpp"

namespace {

using namespace tbstc;

// ---------------------------------------------------------------------
// fp16: every one of the 65536 encodings must survive a decode/encode
// round trip bit-exactly (NaNs compare by NaN-ness).
// ---------------------------------------------------------------------

TEST(Fp16Exhaustive, AllEncodingsRoundTrip)
{
    for (uint32_t h = 0; h <= 0xffff; ++h) {
        const auto half = static_cast<uint16_t>(h);
        const float f = util::fp16ToFloat(half);
        if (std::isnan(f)) {
            EXPECT_TRUE(std::isnan(
                util::fp16ToFloat(util::fp16FromFloat(f))));
            continue;
        }
        EXPECT_EQ(util::fp16FromFloat(f), half) << "bits " << h;
    }
}

TEST(Fp16Exhaustive, DecodeIsMonotoneOnPositives)
{
    // Positive halves sorted by bit pattern are sorted by value.
    float prev = util::fp16ToFloat(0);
    for (uint16_t h = 1; h < 0x7c00; ++h) {
        const float f = util::fp16ToFloat(h);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

// ---------------------------------------------------------------------
// Element-granular datapaths (RM-STC / SGCN).
// ---------------------------------------------------------------------

TEST(ElementGranular, NoBlockQuantizationAtHighSparsity)
{
    // Blocks with 2 kept elements: structured issue pays a whole beat
    // per block; an element pipeline pays nnz/lanes.
    sim::LayerProfile layer;
    layer.x = 256;
    layer.y = 256;
    layer.nb = 64;
    layer.m = 8;
    layer.aNnz = 256 * 256 / 32;
    layer.blocks.assign(32 * 32, sim::BlockTask{2, 1, false, 2});
    layer.aStream = {layer.aNnz * 2, layer.aNnz * 2, 2};

    sim::ArchConfig structured;
    sim::ArchConfig element;
    element.elementGranular = true;
    const auto s = simulateLayer(layer, structured);
    const auto e = simulateLayer(layer, element);
    // 2 nnz -> 1 beat (8 lanes) structured vs 2/8 beat element-wise.
    EXPECT_GT(s.breakdown.compute, e.breakdown.compute * 3.0);
}

TEST(ElementGranular, BeatOverheadScales)
{
    sim::LayerProfile layer;
    layer.x = 128;
    layer.y = 128;
    layer.nb = 32;
    layer.m = 8;
    layer.aNnz = 128 * 128 / 2;
    layer.blocks.assign(16 * 16, sim::BlockTask{32, 4, false, 8});
    layer.aStream = {layer.aNnz * 2, layer.aNnz * 2, 2};

    sim::ArchConfig base;
    sim::ArchConfig padded = base;
    padded.beatOverheadScale = 1.5;
    const auto b = simulateLayer(layer, base);
    const auto p = simulateLayer(layer, padded);
    EXPECT_NEAR(p.breakdown.compute / b.breakdown.compute, 1.5, 1e-9);
}

// ---------------------------------------------------------------------
// Codec estimator consistency: the pipeline's closed-form per-block
// conversion cost must upper-bound (within a tail margin) the real
// queue simulation.
// ---------------------------------------------------------------------

TEST(CodecEstimate, MatchesQueueSimulation)
{
    util::Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<format::StorageElem> storage;
        const size_t n = 1 + rng.below(8);
        for (uint8_t col = 0; col < 8; ++col) {
            const auto rows = rng.permutation(8);
            for (size_t k = 0; k < n; ++k)
                storage.push_back(
                    {1.0f, static_cast<uint8_t>(rows[k]), col});
        }
        const auto out =
            format::convertToComputation(storage, {8, 2, 2});
        const uint64_t estimate = (storage.size() + 1) / 2 + 2;
        EXPECT_LE(out.cycles, estimate + 3);
        EXPECT_GE(out.cycles + 4, estimate);
    }
}

TEST(CodecLineRate, FasterMemoryMeansFasterConversion)
{
    workload::ProfileSpec spec;
    spec.shape = {"codec-linerate", 512, 512, 8};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.5;
    spec.fmt = format::StorageFormat::DDC;
    const auto profile = workload::buildLayerProfile(spec);

    sim::ArchConfig slow;
    slow.dramGbps = 64.0;
    sim::ArchConfig fast;
    fast.dramGbps = 512.0;
    const auto s = simulateLayer(profile, slow);
    const auto f = simulateLayer(profile, fast);
    // Codec is provisioned at line rate, so it can never become the
    // standalone bottleneck when bandwidth scales up.
    EXPECT_LT(f.breakdown.codec, s.breakdown.codec);
    EXPECT_LE(f.breakdown.codecExposed, s.breakdown.total * 0.05);
}

// ---------------------------------------------------------------------
// Derived-meta DDC on non-TBS masks.
// ---------------------------------------------------------------------

TEST(DeriveMeta, DdcRoundTripOnRsvMask)
{
    const auto w = workload::synthWeights({"dm", 64, 64, 1}, 3);
    const auto scores = core::magnitudeScores(w);
    const auto mask = core::rsvMask(scores, 0.6, 8,
                                    core::defaultCandidates(8));
    const auto meta = workload::deriveMeta(mask, 8);
    const auto enc = format::encodeDdc(w, mask, meta);
    EXPECT_EQ(enc->decode(), core::applyMask(w, mask));
}

TEST(DeriveMeta, AllBlocksReduction)
{
    const auto w = workload::synthWeights({"dm2", 32, 32, 1}, 4);
    const auto mask =
        core::usMask(core::magnitudeScores(w), 0.5);
    const auto meta = workload::deriveMeta(mask, 8);
    for (const auto &b : meta.blocks) {
        EXPECT_EQ(b.dim, core::SparsityDim::Reduction);
        EXPECT_LE(b.n, 8);
    }
}

// ---------------------------------------------------------------------
// Teacher dataset.
// ---------------------------------------------------------------------

TEST(TeacherDataset, ShapesAndDeterminism)
{
    nn::TeacherConfig tc;
    tc.features = 16;
    tc.classes = 8;
    tc.trainSamples = 64;
    tc.testSamples = 32;
    util::Rng a(9);
    util::Rng b(9);
    const auto da = nn::makeTeacherDataset(tc, a);
    const auto db = nn::makeTeacherDataset(tc, b);
    EXPECT_EQ(da.train.x, db.train.x);
    EXPECT_EQ(da.train.labels, db.train.labels);
    EXPECT_EQ(da.train.samples(), 64u);
    for (size_t l : da.test.labels)
        EXPECT_LT(l, 8u);
}

TEST(TeacherDataset, UsesMultipleClasses)
{
    nn::TeacherConfig tc;
    tc.features = 16;
    tc.classes = 8;
    tc.trainSamples = 512;
    tc.testSamples = 32;
    util::Rng rng(10);
    const auto d = nn::makeTeacherDataset(tc, rng);
    std::vector<int> seen(8, 0);
    for (size_t l : d.train.labels)
        seen[l] = 1;
    int classes = 0;
    for (int s : seen)
        classes += s;
    EXPECT_GE(classes, 4);
}

// ---------------------------------------------------------------------
// RunStats scaling and model dedup.
// ---------------------------------------------------------------------

TEST(RunStatsScaled, ExtensiveQuantitiesScale)
{
    workload::ProfileSpec spec;
    spec.shape = {"scale-test", 128, 128, 32};
    spec.pattern = core::Pattern::TBS;
    spec.sparsity = 0.5;
    spec.fmt = format::StorageFormat::DDC;
    const auto one =
        simulateLayer(workload::buildLayerProfile(spec), sim::ArchConfig{});
    const auto three = one.scaled(3.0);
    EXPECT_NEAR(three.cycles, 3.0 * one.cycles, 1e-9);
    EXPECT_NEAR(three.energy.totalJ(), 3.0 * one.energy.totalJ(), 1e-15);
    EXPECT_NEAR(three.edp, 9.0 * one.edp, 1e-18);
    EXPECT_DOUBLE_EQ(three.bwUtilisation, one.bwUtilisation);
}

TEST(RunModel, DedupMatchesExplicitSum)
{
    // BERT's 72 layers collapse to 3 unique shapes; the deduped model
    // run must match accumulating a per-shape run times multiplicity.
    using namespace tbstc::accel;
    const auto model = runModel(AccelKind::TbStc,
                                workload::ModelId::BertBase, 0.5, 64);

    sim::RunStats manual;
    struct G
    {
        workload::GemmShape shape;
        double count;
    };
    const std::vector<G> groups{
        {{"bert.L0.q", 768, 768, 64}, 48.0},
        {{"bert.L0.fc1", 3072, 768, 64}, 12.0},
        {{"bert.L0.fc2", 768, 3072, 64}, 12.0},
    };
    for (const auto &g : groups) {
        RunRequest req;
        req.shape = g.shape;
        req.sparsity = 0.5;
        manual.accumulate(runLayer(AccelKind::TbStc, req).scaled(g.count));
    }
    EXPECT_NEAR(model.cycles, manual.cycles, model.cycles * 0.02);
    EXPECT_NEAR(model.energy.totalJ(), manual.energy.totalJ(),
                model.energy.totalJ() * 0.02);
}

// ---------------------------------------------------------------------
// Mask generator degenerate inputs.
// ---------------------------------------------------------------------

TEST(Degenerate, FullAndEmptySparsity)
{
    const auto w = workload::synthWeights({"deg", 32, 32, 1}, 5);
    const auto scores = core::magnitudeScores(w);
    const auto cand = core::defaultCandidates(8);

    const auto empty = core::tbsMask(scores, 1.0, 8, cand);
    EXPECT_EQ(empty.mask.nnz(), 0u);
    EXPECT_TRUE(core::validateTbs(empty.mask, empty.meta));

    const auto full = core::tbsMask(scores, 0.0, 8, cand);
    EXPECT_EQ(full.mask.nnz(), 32u * 32u);
    EXPECT_TRUE(core::validateTbs(full.mask, full.meta));

    EXPECT_EQ(core::tsMask(scores, 0, 8).nnz(), 0u);
    EXPECT_THROW(core::usMask(scores, 1.5), util::FatalError);
}

TEST(Degenerate, AccuracyProxyOtherModels)
{
    using workload::ModelId;
    for (ModelId m : {ModelId::ResNet18, ModelId::Llama27b}) {
        const double dense = workload::denseAccuracy(m);
        EXPECT_GT(dense, 50.0);
        const double tbs =
            workload::proxyAccuracy(m, core::Pattern::TBS, 0.5);
        const double ts =
            workload::proxyAccuracy(m, core::Pattern::TS, 0.5);
        EXPECT_LT(tbs, dense);
        EXPECT_GT(tbs, ts);
    }
}

TEST(Degenerate, LlamaShapesGated)
{
    const auto layers =
        workload::modelLayers(workload::ModelId::Llama27b, 64);
    size_t gates = 0;
    for (const auto &l : layers)
        gates += l.name.find("gate") != std::string::npos;
    EXPECT_EQ(gates, 32u);
    // 11008 pads to a multiple of 8 unchanged.
    for (const auto &l : layers)
        if (l.name.find("down") != std::string::npos)
            EXPECT_EQ(l.y, 11008u);
}

} // namespace
