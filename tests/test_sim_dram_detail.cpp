/**
 * @file
 * Tests for the banked, row-buffered DRAM simulator and its
 * cross-validation of the coarse DramModel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/dram.hpp"
#include "sim/dram_detail.hpp"

namespace {

using namespace tbstc::sim;
using tbstc::format::StreamProfile;

TEST(DramSim, ContiguousStreamHitsRows)
{
    const DramSim dram{ArchConfig{}};
    StreamProfile contiguous{1 << 20, 1 << 20, 1};
    const auto res = dram.serveStream(contiguous);
    // One row miss per 2 KiB row, hits for the rest.
    EXPECT_GT(res.rowHitRate(), 0.95);
    // Near-peak utilisation.
    EXPECT_GT(res.utilisation(1 << 20,
                              ArchConfig{}.dramBytesPerCycle()),
              0.85);
}

TEST(DramSim, ScatteredShortRunsMissRows)
{
    const DramSim dram{ArchConfig{}};
    // 16-byte runs scattered widely: every burst opens a new row.
    StreamProfile scattered{1 << 16, 1 << 16, 4096};
    const auto res = dram.serveStream(scattered, /*spread=*/512.0);
    EXPECT_LT(res.rowHitRate(), 0.2);
    EXPECT_LT(res.utilisation(1 << 16,
                              ArchConfig{}.dramBytesPerCycle()),
              0.6);
}

TEST(DramSim, EmptyStreamFree)
{
    const DramSim dram{ArchConfig{}};
    const auto res = dram.serveStream(StreamProfile{});
    EXPECT_EQ(res.cycles, 0.0);
    EXPECT_EQ(res.bursts, 0u);
}

TEST(DramSim, TraceBurstAccounting)
{
    const DramSim dram{ArchConfig{}};
    // 100 bytes starting at 0 with 32 B bursts -> 4 bursts.
    const std::vector<DramRequest> reqs{{0, 100}};
    const auto res = dram.serveTrace(reqs);
    EXPECT_EQ(res.bursts, 4u);
    EXPECT_EQ(res.requests, 1u);
    EXPECT_EQ(res.rowMisses, 1u); // All inside one 2 KiB row.
    EXPECT_EQ(res.rowHits, 3u);
}

TEST(DramSim, MoreBanksHelpScatteredTraffic)
{
    StreamProfile scattered{1 << 16, 1 << 16, 2048};
    DramTimings few;
    few.banks = 2;
    DramTimings many;
    many.banks = 32;
    const auto f =
        DramSim(ArchConfig{}, few).serveStream(scattered, 64.0);
    const auto m =
        DramSim(ArchConfig{}, many).serveStream(scattered, 64.0);
    EXPECT_LE(m.cycles, f.cycles);
}

TEST(DramSim, EnergyCountsActivationsAndBursts)
{
    const DramSim dram{ArchConfig{}};
    const std::vector<DramRequest> reqs{{0, 64}};
    const auto res = dram.serveTrace(reqs);
    const auto &t = dram.timings();
    EXPECT_NEAR(res.energyJ,
                (t.actPj + 2 * t.burstPj) * 1e-12, 1e-18);
}

/**
 * Cross-validation: the coarse DramModel's utilisation for a stream
 * must agree with the banked simulator's within a modest band, in
 * both the contiguous and the fragmented regime. This is the evidence
 * that the per-segment-overhead abstraction used throughout the
 * pipeline is sound.
 */
TEST(DramSim, CoarseModelAgreesDirectionally)
{
    const ArchConfig cfg;
    const DramModel coarse(cfg);
    const DramSim detailed(cfg);

    const StreamProfile streams[] = {
        {1 << 20, 1 << 20, 1},      // Contiguous (DDC-like).
        {1 << 18, 1 << 18, 2048},   // 128 B runs (moderate CSR).
        {1 << 16, 1 << 16, 4096},   // 16 B runs (worst-case CSR).
    };
    const double spreads[] = {1.0, 4.0, 512.0};
    double prev_coarse = 2.0;
    double prev_detail = 2.0;
    for (size_t i = 0; i < 3; ++i) {
        const double u_coarse = coarse.stream(streams[i]).utilisation();
        const auto d = detailed.serveStream(streams[i], spreads[i]);
        const double u_detail = d.utilisation(
            static_cast<double>(streams[i].usefulBytes),
            cfg.dramBytesPerCycle());
        // Same ordering: more fragmentation, less delivered bandwidth.
        EXPECT_LT(u_coarse, prev_coarse);
        EXPECT_LT(u_detail, prev_detail);
        prev_coarse = u_coarse;
        prev_detail = u_detail;
        if (i == 0) {
            // Contiguous regime: both near peak.
            EXPECT_GT(u_coarse, 0.9);
            EXPECT_GT(u_detail, 0.85);
        } else {
            // Fragmented regimes: the coarse model's per-segment
            // constant is calibrated to the paper's utilisation
            // anchors; the banked simulator, which pays real
            // activations, bounds it from below.
            EXPECT_LE(u_detail, u_coarse + 0.05) << i;
        }
    }
}

} // namespace
