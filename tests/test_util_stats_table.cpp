/**
 * @file
 * Unit tests for statistics helpers, the table printer, and formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/fmt.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace tbstc::util;

TEST(Stats, Mean)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Geomean)
{
    const std::vector<double> xs{1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
    const std::vector<double> bad{1.0, -1.0};
    EXPECT_THROW(geomean(bad), PanicError);
}

TEST(Stats, Stddev)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, MinMax)
{
    const std::vector<double> xs{3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.0);
    EXPECT_THROW(minOf({}), PanicError);
}

TEST(RatioStat, Accumulates)
{
    RatioStat r;
    EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
    r.add(1.0, 2.0);
    r.add(3.0, 6.0);
    EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
    EXPECT_DOUBLE_EQ(r.numerator(), 4.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(1.0);       // bin 0
    h.add(9.5);       // bin 4
    h.add(-3.0);      // clamped to bin 0
    h.add(42.0, 2.0); // clamped to bin 4, weight 2
    EXPECT_DOUBLE_EQ(h.count(0), 2.0);
    EXPECT_DOUBLE_EQ(h.count(4), 3.0);
    EXPECT_DOUBLE_EQ(h.total(), 5.0);
    EXPECT_DOUBLE_EQ(h.binLo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHi(1), 4.0);
}

TEST(Histogram, NanSamplesAreDropped)
{
    Histogram h(0.0, 10.0, 5);
    h.add(std::nan(""));
    h.add(std::nan(""), 3.0);
    EXPECT_DOUBLE_EQ(h.total(), 0.0);
    for (size_t i = 0; i < h.bins(); ++i)
        EXPECT_DOUBLE_EQ(h.count(i), 0.0);
    h.add(5.0); // Still works after NaN traffic.
    EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, InfinitiesClampToEdgeBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(std::numeric_limits<double>::infinity());
    h.add(-std::numeric_limits<double>::infinity(), 2.0);
    h.add(std::numeric_limits<double>::max());
    h.add(-std::numeric_limits<double>::max());
    EXPECT_DOUBLE_EQ(h.count(4), 2.0);
    EXPECT_DOUBLE_EQ(h.count(0), 3.0);
    EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(Histogram, ExactBoundariesLandInExpectedBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);  // lo: bin 0.
    h.add(10.0); // hi (exclusive upper bound): clamps to top bin.
    h.add(2.0);  // First interior boundary: bin 1.
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(1), 1.0);
    EXPECT_DOUBLE_EQ(h.count(4), 1.0);
}

TEST(Histogram, RejectsDegenerate)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), PanicError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
}

TEST(FmtDouble, Precision)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(FormatStr, SubstitutesPlaceholders)
{
    EXPECT_EQ(formatStr("a={} b={}", 1, "x"), "a=1 b=x");
    EXPECT_EQ(formatStr("no placeholders"), "no placeholders");
    EXPECT_EQ(formatStr("{} {}", 5), "5 {}");
    EXPECT_EQ(formatStr("{}", 1.5), "1.5");
}

TEST(Table, RendersAligned)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RendersEmptyTable)
{
    Table t({"a", "b"});
    EXPECT_EQ(t.rows(), 0u);
    const std::string out = t.render();
    // Header and rule are still present with zero data rows.
    EXPECT_NE(out.find('a'), std::string::npos);
    EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Table, RendersSingleRow)
{
    Table t({"col"});
    t.addRow({"only"});
    const std::string out = t.render();
    EXPECT_NE(out.find("only"), std::string::npos);
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.data()[0][0], "only");
}

TEST(Table, RejectsBadRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Logging, FatalThrowsAndFormats)
{
    try {
        fatal("bad value {}", 42);
        FAIL() << "fatal must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value 42");
    }
}

TEST(Logging, EnsurePassesAndFails)
{
    EXPECT_NO_THROW(ensure(true, "fine"));
    EXPECT_THROW(ensure(false, "broken"), PanicError);
}

} // namespace
