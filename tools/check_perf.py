#!/usr/bin/env python3
"""Compare a bench_kernels --json run against a checked-in baseline.

Both files are google-benchmark JSON (the --json flag of bench_kernels
translates to --benchmark_out). Raw nanosecond times are not comparable
across machines, so the check is *relative*: every benchmark's
current/baseline cpu_time ratio is divided by the median ratio across
all shared benchmarks (the machine-speed factor), and a benchmark fails
only when it is more than --tolerance slower than the fleet after that
normalization. A uniform slowdown (slower CI runner) therefore passes;
one kernel regressing against its peers fails.

Exit codes: 0 ok, 1 regression found, 2 bad input.
"""

import argparse
import json
import statistics
import sys


def load_times(path):
    """benchmark name -> cpu_time (ns) from a google-benchmark JSON."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot read '{path}': {e}", file=sys.stderr)
        sys.exit(2)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = float(b["cpu_time"])
    if not times:
        print(f"check_perf: no benchmarks in '{path}'", file=sys.stderr)
        sys.exit(2)
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="fresh bench_kernels JSON")
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed normalized slowdown (default 0.25)")
    args = ap.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline)

    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("check_perf: no shared benchmarks", file=sys.stderr)
        return 2
    for name in sorted(set(baseline) - set(current)):
        print(f"check_perf: WARNING baseline-only benchmark: {name}")
    for name in sorted(set(current) - set(baseline)):
        print(f"check_perf: note: not in baseline (skipped): {name}")

    ratios = {n: current[n] / baseline[n] for n in shared}
    scale = statistics.median(ratios.values())
    print(f"check_perf: machine-speed factor {scale:.3f} "
          f"(median of {len(shared)} benchmarks)")

    failed = []
    for name in shared:
        normalized = ratios[name] / scale
        status = "ok"
        if normalized > 1.0 + args.tolerance:
            status = "REGRESSION"
            failed.append(name)
        print(f"  {name:40s} {current[name]:14.1f}ns "
              f"vs {baseline[name]:14.1f}ns "
              f"normalized {normalized:6.3f}  {status}")

    if failed:
        print(f"check_perf: {len(failed)} benchmark(s) regressed "
              f">{args.tolerance:.0%} vs baseline: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"check_perf: all {len(shared)} shared benchmarks within "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
