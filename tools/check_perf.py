#!/usr/bin/env python3
"""Compare a bench_kernels --json run against a checked-in baseline.

Both files are google-benchmark JSON (the --json flag of bench_kernels
translates to --benchmark_out). Raw nanosecond times are not comparable
across machines, so the check is *relative*: every benchmark's
current/baseline cpu_time ratio is divided by the median ratio across
all shared benchmarks (the machine-speed factor), and a benchmark fails
only when it is more than --tolerance slower than the fleet after that
normalization. A uniform slowdown (slower CI runner) therefore passes;
one kernel regressing against its peers fails.

Baselines are keyed by kernel ISA: kernel timings under AVX-512 are not
comparable to a scalar-only runner, so when BASELINE is a *directory*
the script reads the active ISA from the current run's
context.tbstc_isa field (bench_kernels records it via
AddCustomContext) and picks '<dir>/bench_kernels-<isa>.json'. Passing a
file keeps the old behavior, but the ISAs recorded in both files must
then match.

Exit codes: 0 ok, 1 regression found, 2 bad input.
"""

import argparse
import json
import os
import statistics
import sys


def load_doc(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot read '{path}': {e}", file=sys.stderr)
        sys.exit(2)


def doc_isa(doc):
    """The kernel ISA the run was taken under, or None for old files."""
    return doc.get("context", {}).get("tbstc_isa")


def doc_times(doc, path):
    """benchmark name -> cpu_time (ns) from a google-benchmark JSON.

    With --benchmark_repetitions the same name appears once per
    repetition; the minimum is used because timing noise on a shared
    runner is one-sided (contention only ever adds time), so the
    fastest repetition is the best estimate of true cost. Noisy
    runners should pass repetitions rather than widen the tolerance.
    """
    samples = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        samples.setdefault(b["name"], []).append(float(b["cpu_time"]))
    if not samples:
        print(f"check_perf: no benchmarks in '{path}'", file=sys.stderr)
        sys.exit(2)
    return {n: min(v) for n, v in samples.items()}


def resolve_baseline(baseline_arg, current_isa, prefix):
    """Map a baseline directory to its per-ISA file; pass files through."""
    if not os.path.isdir(baseline_arg):
        return baseline_arg
    if current_isa is None:
        print("check_perf: baseline is a directory but the current run "
              f"has no context.tbstc_isa field ({prefix} too old?)",
              file=sys.stderr)
        sys.exit(2)
    path = os.path.join(baseline_arg, f"{prefix}-{current_isa}.json")
    if not os.path.isfile(path):
        have = sorted(n[len(prefix) + 1:-len(".json")]
                      for n in os.listdir(baseline_arg)
                      if n.startswith(prefix + "-") and
                      n.endswith(".json"))
        print(f"check_perf: no baseline for ISA '{current_isa}' "
              f"(missing {path})\n"
              f"check_perf: available ISAs: {', '.join(have) or 'none'}\n"
              f"check_perf: record one on this machine with: "
              f"{prefix} --json run.json && "
              f"tools/make_baseline.py run.json -o {path}",
              file=sys.stderr)
        sys.exit(2)
    print(f"check_perf: ISA '{current_isa}' -> baseline {path}")
    return path


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="fresh bench_kernels JSON")
    ap.add_argument("baseline",
                    help="baseline JSON file, or a directory of per-ISA "
                         "baselines (bench_kernels-<isa>.json)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed normalized slowdown (default 0.25)")
    ap.add_argument("--prefix", default="bench_kernels",
                    help="baseline filename prefix when BASELINE is a "
                         "directory: <prefix>-<isa>.json (default "
                         "bench_kernels; use bench_serve for the serve "
                         "daemon benchmarks)")
    args = ap.parse_args()

    current_doc = load_doc(args.current)
    current_isa = doc_isa(current_doc)
    baseline_path = resolve_baseline(args.baseline, current_isa,
                                     args.prefix)
    baseline_doc = load_doc(baseline_path)
    baseline_isa = doc_isa(baseline_doc)

    if current_isa and baseline_isa and current_isa != baseline_isa:
        print(f"check_perf: ISA mismatch: current run used "
              f"'{current_isa}' but baseline '{baseline_path}' was taken "
              f"under '{baseline_isa}'", file=sys.stderr)
        return 2

    current = doc_times(current_doc, args.current)
    baseline = doc_times(baseline_doc, baseline_path)

    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("check_perf: no shared benchmarks", file=sys.stderr)
        return 2
    for name in sorted(set(baseline) - set(current)):
        print(f"check_perf: WARNING baseline-only benchmark: {name}")
    for name in sorted(set(current) - set(baseline)):
        print(f"check_perf: note: not in baseline (skipped): {name}")

    ratios = {n: current[n] / baseline[n] for n in shared}
    scale = statistics.median(ratios.values())
    print(f"check_perf: machine-speed factor {scale:.3f} "
          f"(median of {len(shared)} benchmarks)")

    failed = []
    for name in shared:
        normalized = ratios[name] / scale
        status = "ok"
        if normalized > 1.0 + args.tolerance:
            status = "REGRESSION"
            failed.append(name)
        print(f"  {name:40s} {current[name]:14.1f}ns "
              f"vs {baseline[name]:14.1f}ns "
              f"normalized {normalized:6.3f}  {status}")

    if failed:
        print(f"check_perf: {len(failed)} benchmark(s) regressed "
              f">{args.tolerance:.0%} vs baseline: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"check_perf: all {len(shared)} shared benchmarks within "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
