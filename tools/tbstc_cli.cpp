/**
 * @file
 * tbstc — command-line driver for the TB-STC simulator.
 *
 * Subcommands:
 *   run      simulate one model or one layer on one accelerator
 *   compare  simulate a workload on every accelerator
 *   formats  storage-format study (bytes, redundancy, bandwidth)
 *   fsck     validate a serialized DDC stream, report decode errors
 *   area     area/power breakdown of an accelerator
 *
 * Examples:
 *   tbstc run --accel tbstc --model bert --sparsity 0.75 --seq 128
 *   tbstc run --accel tbstc --layer 3072x768x128 --sparsity 0.5 --csv
 *   tbstc compare --model opt --sparsity 0.5 --seq 256
 *   tbstc formats --layer 512x512x1 --sparsity 0.75 --dump w.ddc
 *   tbstc fsck w.ddc
 *   tbstc area --accel tbstc
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "core/prune.hpp"
#include "core/sparsify.hpp"
#include "format/encoding.hpp"
#include "format/serialize.hpp"
#include "sim/dram.hpp"
#include "sim/energy.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "workload/synth.hpp"

using namespace tbstc;

namespace {

/** Minimal --key value / --flag argument parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) {
                fail("unexpected argument '" + key + "'");
            }
            key = key.substr(2);
            if (i + 1 < argc
                && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "";
            }
        }
    }

    std::optional<std::string>
    get(const std::string &key) const
    {
        const auto it = values_.find(key);
        return it == values_.end()
            ? std::nullopt
            : std::optional<std::string>(it->second);
    }

    std::string
    require(const std::string &key) const
    {
        const auto v = get(key);
        if (!v || v->empty())
            fail("missing required option --" + key);
        return *v;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto v = get(key);
        return v && !v->empty() ? std::stod(*v) : fallback;
    }

    uint64_t
    getU64(const std::string &key, uint64_t fallback) const
    {
        const auto v = get(key);
        return v && !v->empty() ? std::stoull(*v) : fallback;
    }

    bool has(const std::string &key) const { return get(key).has_value(); }

    [[noreturn]] static void
    fail(const std::string &msg)
    {
        std::fprintf(stderr, "tbstc: %s (try 'tbstc help')\n",
                     msg.c_str());
        std::exit(2);
    }

  private:
    std::map<std::string, std::string> values_;
};

accel::AccelKind
parseAccel(const std::string &name)
{
    static const std::map<std::string, accel::AccelKind> kinds{
        {"tc", accel::AccelKind::TC},
        {"stc", accel::AccelKind::STC},
        {"vegeta", accel::AccelKind::Vegeta},
        {"highlight", accel::AccelKind::HighLight},
        {"rmstc", accel::AccelKind::RmStc},
        {"sgcn", accel::AccelKind::Sgcn},
        {"tbstc", accel::AccelKind::TbStc},
        {"fan", accel::AccelKind::TbStcFan},
    };
    const auto it = kinds.find(name);
    if (it == kinds.end())
        Args::fail("unknown accelerator '" + name + "'");
    return it->second;
}

workload::ModelId
parseModel(const std::string &name)
{
    static const std::map<std::string, workload::ModelId> models{
        {"resnet50", workload::ModelId::ResNet50},
        {"resnet18", workload::ModelId::ResNet18},
        {"bert", workload::ModelId::BertBase},
        {"opt", workload::ModelId::Opt67b},
        {"llama", workload::ModelId::Llama27b},
    };
    const auto it = models.find(name);
    if (it == models.end())
        Args::fail("unknown model '" + name + "'");
    return it->second;
}

workload::GemmShape
parseLayer(const std::string &spec)
{
    // "XxYxNB"
    uint64_t x = 0;
    uint64_t y = 0;
    uint64_t nb = 0;
    if (std::sscanf(spec.c_str(), "%llux%llux%llu",
                    reinterpret_cast<unsigned long long *>(&x),
                    reinterpret_cast<unsigned long long *>(&y),
                    reinterpret_cast<unsigned long long *>(&nb))
        != 3)
        Args::fail("layer spec must be XxYxNB, got '" + spec + "'");
    return {"cli.layer", x, y, nb};
}

void
printStats(const std::string &label, const sim::RunStats &s, bool csv)
{
    if (csv) {
        std::printf("%s,%.0f,%.6e,%.6e,%.6e,%.4f,%.4f\n", label.c_str(),
                    s.cycles, s.seconds, s.energy.totalJ(), s.edp,
                    s.computeUtilisation, s.bwUtilisation);
        return;
    }
    std::printf("%-10s cycles=%.0f time=%.3f ms energy=%.3f mJ "
                "EDP=%.4e computeUtil=%.1f%% bwUtil=%.1f%%\n",
                label.c_str(), s.cycles, s.seconds * 1e3,
                s.energy.totalJ() * 1e3, s.edp,
                s.computeUtilisation * 100.0, s.bwUtilisation * 100.0);
}

sim::RunStats
runOne(accel::AccelKind kind, const Args &args)
{
    const double sparsity = args.getDouble("sparsity", 0.5);
    const uint64_t seq = args.getU64("seq", 128);
    const uint64_t seed = args.getU64("seed", 42);
    const bool int8 = args.has("int8");

    std::optional<sim::ArchConfig> override;
    if (args.has("bw")) {
        auto cfg = accel::accelConfig(kind);
        cfg.dramGbps = args.getDouble("bw", cfg.dramGbps);
        override = cfg;
    }

    if (args.has("layer")) {
        accel::RunRequest req;
        req.shape = parseLayer(args.require("layer"));
        req.sparsity = sparsity;
        req.seed = seed;
        req.int8Weights = int8;
        req.configOverride = override;
        return accel::runLayer(kind, req);
    }
    const auto model = parseModel(args.require("model"));
    if (args.has("full")) {
        // Full inference pass: weight GEMMs + dense attention GEMMs.
        return accel::runInference(kind, model, sparsity, seq, int8,
                                   seed);
    }
    if (override) {
        sim::RunStats total;
        for (const auto &shape : workload::modelLayers(model, seq)) {
            accel::RunRequest req;
            req.shape = shape;
            req.sparsity = sparsity;
            req.seed = seed;
            req.int8Weights = int8;
            req.configOverride = override;
            total.accumulate(accel::runLayer(kind, req));
        }
        return total;
    }
    return accel::runModel(kind, model, sparsity, seq, int8, seed);
}

int
cmdRun(const Args &args)
{
    const auto kind = parseAccel(args.require("accel"));
    const bool csv = args.has("csv");
    if (csv)
        std::printf("accel,cycles,seconds,energyJ,edp,computeUtil,"
                    "bwUtil\n");
    printStats(accel::accelName(kind), runOne(kind, args), csv);
    return 0;
}

int
cmdCompare(const Args &args)
{
    const bool csv = args.has("csv");
    if (csv)
        std::printf("accel,cycles,seconds,energyJ,edp,computeUtil,"
                    "bwUtil\n");
    const std::vector<accel::AccelKind> kinds{
        accel::AccelKind::TC,        accel::AccelKind::STC,
        accel::AccelKind::Vegeta,    accel::AccelKind::HighLight,
        accel::AccelKind::RmStc,     accel::AccelKind::Sgcn,
        accel::AccelKind::TbStc};
    // One independent simulation per accelerator: fan out, print in
    // the fixed order.
    const auto stats = util::parallelMap<sim::RunStats>(
        kinds.size(), [&](size_t i) { return runOne(kinds[i], args); });
    for (size_t i = 0; i < kinds.size(); ++i)
        printStats(accel::accelName(kinds[i]), stats[i], csv);
    return 0;
}

int
cmdFormats(const Args &args)
{
    const auto shape = args.has("layer")
        ? parseLayer(args.require("layer"))
        : workload::GemmShape{"cli.formats", 512, 512, 1};
    const double sparsity = args.getDouble("sparsity", 0.75);
    const uint64_t seed = args.getU64("seed", 42);

    const auto w = workload::synthWeights(shape, seed, 4096);
    const auto scores = core::magnitudeScores(w);
    const auto tbs = core::tbsMask(scores, sparsity, 8,
                                   core::defaultCandidates(8));
    const sim::DramModel dram{sim::ArchConfig{}};

    util::Table t({"format", "bytes", "redundancy", "segments",
                   "bandwidth util"});
    auto row = [&](const std::string &name,
                   const format::Encoding &enc) {
        const auto p = enc.streamProfile(8);
        t.addRow({name, std::to_string(enc.storageBytes()),
                  util::fmtDouble(p.redundancy() * 100.0, 1) + "%",
                  std::to_string(p.segments),
                  util::fmtDouble(
                      dram.stream(p).utilisation() * 100.0, 1)
                      + "%"});
    };
    row("Dense", *format::encodeDense(w));
    row("SDC", *format::encodeSdc(w, tbs.mask));
    row("CSR", *format::encodeCsr(w, tbs.mask));
    row("Bitmap", *format::encodeBitmap(w, tbs.mask));
    row("DDC", *format::encodeDdc(w, tbs.mask, tbs.meta));
    std::printf("TBS mask on %llux%llu at %.1f%% sparsity:\n",
                static_cast<unsigned long long>(w.rows()),
                static_cast<unsigned long long>(w.cols()),
                sparsity * 100.0);
    t.print();

    if (args.has("dump")) {
        const std::string path = args.require("dump");
        const auto bytes = format::serializeDdc(w, tbs.mask, tbs.meta);
        std::ofstream out(path, std::ios::binary);
        if (!out
            || !out.write(reinterpret_cast<const char *>(bytes.data()),
                          static_cast<std::streamsize>(bytes.size()))) {
            std::fprintf(stderr, "tbstc: cannot write '%s'\n",
                         path.c_str());
            return 1;
        }
        std::printf("wrote %zu-byte DDC stream to %s\n", bytes.size(),
                    path.c_str());
    }
    return 0;
}

/**
 * fsck: validate a DDC stream dumped to disk, reporting the decode
 * taxonomy entry and byte offset on failure. Exit 0 only for a stream
 * the hardened decoder fully accepts.
 */
int
cmdFsck(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "tbstc fsck: cannot read '%s'\n",
                     path.c_str());
        return 2;
    }
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    const auto parsed = format::tryDeserializeDdc(bytes);
    if (!parsed) {
        const auto &e = parsed.error();
        std::fprintf(stderr,
                     "tbstc fsck: %s: %s at byte %zu: %s\n",
                     path.c_str(), format::decodeErrorName(e.kind),
                     e.offset, e.message.c_str());
        return 1;
    }
    std::printf("%s: ok — %zux%zu matrix, m=%zu, %zu blocks, "
                "%zu kept values, %zu bytes\n",
                path.c_str(), parsed->matrix.rows(),
                parsed->matrix.cols(), parsed->meta.m,
                parsed->meta.blocks.size(), parsed->mask.nnz(),
                bytes.size());
    return 0;
}

int
cmdArea(const Args &args)
{
    const auto kind = parseAccel(args.require("accel"));
    const sim::AreaModel model{accel::accelConfig(kind)};
    util::Table t({"component", "area(mm^2)", "power(mW)"});
    for (const auto &c : model.components())
        t.addRow({c.name, util::fmtDouble(c.areaMm2, 3),
                  util::fmtDouble(c.powerMw, 2)});
    t.addRow({"Total", util::fmtDouble(model.totalAreaMm2(), 3),
              util::fmtDouble(model.totalPowerMw(), 2)});
    t.print();
    return 0;
}

int
cmdHelp()
{
    std::puts(
        "tbstc — TB-STC sparse-tensor-core simulator\n"
        "\n"
        "usage: tbstc <command> [options]\n"
        "\n"
        "commands:\n"
        "  run      --accel K (--model M | --layer XxYxNB) [options]\n"
        "  compare  (--model M | --layer XxYxNB) [options]\n"
        "  formats  [--layer XxYxNB] [--sparsity S] [--seed N]\n"
        "           [--dump FILE]  (write the DDC byte stream)\n"
        "  fsck     FILE  (validate a dumped DDC stream; prints the\n"
        "           decode-error class and byte offset, exits non-zero\n"
        "           on corruption)\n"
        "  area     --accel K\n"
        "  help\n"
        "\n"
        "accelerators: tc stc vegeta highlight rmstc sgcn tbstc fan\n"
        "models:       resnet50 resnet18 bert opt llama\n"
        "\n"
        "options:\n"
        "  --sparsity S   weight sparsity degree (default 0.5)\n"
        "  --seq N        sequence length for transformers (default 128)\n"
        "  --bw GB/s      override off-chip bandwidth\n"
        "  --int8         8-bit weights (Q+S mode)\n"
        "  --full         include dense attention GEMMs (inference)\n"
        "  --seed N       weight-synthesis seed (default 42)\n"
        "  --threads N    worker threads for parallel sweeps\n"
        "                 (default TBSTC_THREADS or all cores; 1 =\n"
        "                 serial; results identical at any setting)\n"
        "  --csv          machine-readable output");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp();
    const std::string cmd = argv[1];
    try {
        if (cmd == "fsck") {
            // Positional FILE argument, not --key value.
            if (argc != 3)
                Args::fail("fsck expects exactly one FILE argument");
            return cmdFsck(argv[2]);
        }
        const Args args(argc, argv);
        if (args.has("threads"))
            util::setThreads(args.getU64("threads", 0));
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "compare")
            return cmdCompare(args);
        if (cmd == "formats")
            return cmdFormats(args);
        if (cmd == "area")
            return cmdArea(args);
        if (cmd == "help" || cmd == "--help")
            return cmdHelp();
        Args::fail("unknown command '" + cmd + "'");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tbstc: %s\n", e.what());
        return 1;
    }
}
