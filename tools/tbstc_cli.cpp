/**
 * @file
 * tbstc — command-line driver for the TB-STC simulator.
 *
 * Subcommands:
 *   run      simulate one model or one layer on one accelerator
 *   compare  simulate a workload on every accelerator
 *   formats  storage-format study (bytes, redundancy, bandwidth)
 *   fsck     validate a serialized DDC stream, report decode errors
 *   area     area/power breakdown of an accelerator
 *   cpuinfo  detected CPU features and the dispatched kernel table
 *   serve    daemon answering run/sparsify requests over a socket
 *   loadgen  drive a serve daemon with a deterministic request mix
 *
 * run and serve share the execution layer in src/serve/exec.*, so a
 * daemon response's csv field is byte-identical to the one-shot
 * `tbstc run --csv` data line for the same parameters (see
 * docs/serving.md).
 *
 * Every subcommand declares its flags in a util::FlagSet, so parsing,
 * validation, and `tbstc help <command>` output all come from one
 * declaration. Telemetry flags (--trace / --metrics) are shared by the
 * simulating subcommands and enable the src/obs subsystem for the run.
 *
 * Stream discipline: machine-consumable output (tables, CSV, fsck
 * verdict lines) goes to stdout; diagnostics go to stderr.
 *
 * Examples:
 *   tbstc run --accel tbstc --model bert --sparsity 0.75 --seq 128
 *   tbstc run --accel tbstc --layer 3072x768x128 --sparsity 0.5 --csv
 *   tbstc run --accel tbstc --layer 512x512x8 \
 *       --trace trace.json --metrics metrics.json
 *   tbstc compare --model opt --sparsity 0.5 --seq 256
 *   tbstc formats --layer 512x512x1 --sparsity 0.75 --dump w.ddc
 *   tbstc fsck w.ddc
 *   tbstc area --accel tbstc
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "accel/accelerator.hpp"
#include "core/mask_search.hpp"
#include "core/prune.hpp"
#include "kernels/kernels.hpp"
#include "core/sparsify.hpp"
#include "format/encoding.hpp"
#include "format/serialize.hpp"
#include "obs/obs.hpp"
#include "serve/config.hpp"
#include "serve/exec.hpp"
#include "serve/fuzz.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "sim/dram.hpp"
#include "sim/energy.hpp"
#include "util/contentstore.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "workload/synth.hpp"

using namespace tbstc;

namespace {

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "tbstc: %s (try 'tbstc help')\n", msg.c_str());
    std::exit(2);
}

// Name parsing lives in serve/exec (shared with the daemon); the CLI
// wrappers keep the historical exit-2 behavior on bad input.
accel::AccelKind
parseAccel(const std::string &name)
{
    const auto kind = serve::tryParseAccel(name);
    if (!kind)
        fail("unknown accelerator '" + name + "'");
    return *kind;
}

workload::GemmShape
parseLayer(const std::string &spec)
{
    const auto shape = serve::tryParseLayer(spec, "cli.layer");
    if (!shape)
        fail("layer spec must be XxYxNB, got '" + spec + "'");
    return *shape;
}

/**
 * Flags shared by the simulating subcommands (run/compare), bound to
 * one options struct. declare() registers them on a FlagSet in a fixed
 * order so help output is uniform across subcommands.
 */
struct SimOpts
{
    std::string model;
    std::string layer;
    double sparsity = 0.5;
    std::string maskStrategy;
    uint64_t seq = 128;
    uint64_t seed = 42;
    double bw = 0.0;
    bool int8 = false;
    bool full = false;
    uint64_t threads = 0;
    bool csv = false;
    std::string tracePath;
    std::string metricsPath;
    bool metricsHost = false;
    std::string profileCache;
    bool noCache = false;
    std::string isa;

    void
    declare(util::FlagSet &flags)
    {
        flags
            .option("model", &model, "M",
                    "workload model: resnet50 resnet18 bert opt llama")
            .option("layer", &layer, "XxYxNB",
                    "simulate one GEMM layer instead of a model")
            .option("sparsity", &sparsity, "S",
                    "weight sparsity degree (default 0.5)")
            .option("mask-strategy", &maskStrategy, "NAME",
                    "TBS mask-search strategy: greedy optimal "
                    "(default greedy)")
            .option("seq", &seq, "N",
                    "sequence length for transformers (default 128)")
            .option("bw", &bw, "GB/s", "override off-chip bandwidth")
            .flag("int8", &int8, "8-bit weights (Q+S mode)")
            .flag("full", &full,
                  "include dense attention GEMMs (inference)")
            .option("seed", &seed, "N",
                    "weight-synthesis seed (default 42)")
            .option("threads", &threads, "N",
                    "worker threads (default TBSTC_THREADS or all "
                    "cores; 1 = serial; results identical at any "
                    "setting)")
            .flag("csv", &csv, "machine-readable output")
            .option("trace", &tracePath, "FILE",
                    "write a chrome://tracing event trace")
            .option("metrics", &metricsPath, "FILE",
                    "write the deterministic metrics JSON")
            .flag("metrics-host", &metricsHost,
                  "include host-domain (schedule-dependent) metrics "
                  "in --metrics output")
            .option("profile-cache", &profileCache, "DIR",
                    "persist profile/sim results to DIR and reuse "
                    "them across runs (also: TBSTC_PROFILE_CACHE)")
            .flag("no-cache", &noCache,
                  "disable the in-memory and on-disk result caches")
            .option("isa", &isa, "L",
                    "force the kernel ISA level: scalar avx2 avx512 "
                    "neon native (default: best supported; also "
                    "TBSTC_ISA — see 'tbstc cpuinfo')");
    }

    /** Turn on the obs subsystem for the flags that need it. */
    void
    enableTelemetry() const
    {
        if (!isa.empty()) {
            kernels::Isa level;
            if (!kernels::parseIsa(isa, level))
                fail("unknown ISA level '" + isa + "'");
            if (!kernels::setIsa(level))
                fail("ISA level '" + isa
                     + "' is not supported on this host "
                       "(see 'tbstc cpuinfo')");
        }
        if (!tracePath.empty())
            obs::setTracingEnabled(true);
        if (!metricsPath.empty())
            obs::setMetricsEnabled(true);
        // Attribute every metrics export to its kernel backend: the
        // level is fixed per run, so the gauge is deterministic.
        obs::gauge("kernels.isa")
            .record(static_cast<int64_t>(kernels::activeIsa()));
        if (threads > 0)
            util::setThreads(threads);
        if (noCache)
            util::ContentStore::instance().setEnabled(false);
        else if (!profileCache.empty())
            util::ContentStore::instance().setDiskDir(profileCache);
    }

    /** Write requested telemetry files; returns 0 or an exit code. */
    int
    writeTelemetry() const
    {
        if (!metricsPath.empty()
            && !obs::writeMetricsJson(metricsPath, metricsHost)) {
            std::fprintf(stderr, "tbstc: cannot write '%s'\n",
                         metricsPath.c_str());
            return 1;
        }
        if (!tracePath.empty()
            && !obs::writeChromeTrace(tracePath)) {
            std::fprintf(stderr, "tbstc: cannot write '%s'\n",
                         tracePath.c_str());
            return 1;
        }
        return 0;
    }
};

/**
 * Run a FlagSet over argv, printing help or a parse diagnostic as
 * appropriate. Returns an exit code to propagate, or -1 to proceed.
 */
int
parseOrReport(util::FlagSet &flags, int argc, char **argv)
{
    const auto parsed = flags.parse(argc, argv);
    if (!parsed) {
        const auto &e = parsed.error();
        std::fprintf(stderr, "tbstc: %s\n%s", e.message.c_str(),
                     flags.help().c_str());
        return 2;
    }
    if (flags.helpRequested()) {
        std::fputs(flags.help().c_str(), stdout);
        return 0;
    }
    return -1;
}

void
printStats(const std::string &label, const sim::RunStats &s, bool csv)
{
    std::fputs(serve::formatStats(label, s, csv).c_str(), stdout);
}

sim::RunStats
runOne(accel::AccelKind kind, const SimOpts &opts, bool bw_set)
{
    serve::RunSpec spec;
    spec.kind = kind;
    spec.model = opts.model;
    spec.layer = opts.layer;
    spec.sparsity = opts.sparsity;
    spec.seq = opts.seq;
    spec.seed = opts.seed;
    spec.int8Weights = opts.int8;
    spec.full = opts.full;
    spec.strategy = opts.maskStrategy;
    if (bw_set)
        spec.bw = opts.bw;
    // Validate names here so bad input keeps its exit-2 diagnostic
    // instead of surfacing as a caught exception (exit 1).
    if (!core::isMaskStrategy(spec.strategy))
        fail("unknown mask strategy '" + spec.strategy + "'");
    if (spec.layer.empty() && spec.model.empty())
        fail("need --model or --layer");
    if (!spec.model.empty() && !serve::tryParseModel(spec.model))
        fail("unknown model '" + spec.model + "'");
    if (!spec.layer.empty())
        parseLayer(spec.layer);
    return serve::executeRun(spec);
}

util::FlagSet
runFlags(SimOpts &opts, std::string &accel)
{
    util::FlagSet flags(
        "run", "Simulate one model or layer on one accelerator.");
    flags.option("accel", &accel, "K",
                 "accelerator: tc stc vegeta highlight rmstc sgcn "
                 "tbstc fan",
                 /*required=*/true);
    opts.declare(flags);
    return flags;
}

int
cmdRun(int argc, char **argv)
{
    SimOpts opts;
    std::string accel;
    util::FlagSet flags = runFlags(opts, accel);
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;
    opts.enableTelemetry();

    const auto kind = parseAccel(accel);
    if (opts.csv)
        std::fputs(serve::statsCsvHeader().c_str(), stdout);
    printStats(accel::accelName(kind),
               runOne(kind, opts, flags.seen("bw")), opts.csv);
    return opts.writeTelemetry();
}

util::FlagSet
compareFlags(SimOpts &opts)
{
    util::FlagSet flags(
        "compare", "Simulate a workload on every accelerator.");
    opts.declare(flags);
    return flags;
}

int
cmdCompare(int argc, char **argv)
{
    SimOpts opts;
    util::FlagSet flags = compareFlags(opts);
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;
    opts.enableTelemetry();

    if (opts.csv)
        std::fputs(serve::statsCsvHeader().c_str(), stdout);
    const std::vector<accel::AccelKind> kinds{
        accel::AccelKind::TC,        accel::AccelKind::STC,
        accel::AccelKind::Vegeta,    accel::AccelKind::HighLight,
        accel::AccelKind::RmStc,     accel::AccelKind::Sgcn,
        accel::AccelKind::TbStc};
    // One independent simulation per accelerator: fan out, print in
    // the fixed order.
    const bool bw_set = flags.seen("bw");
    const auto stats = util::parallelMap<sim::RunStats>(
        kinds.size(),
        [&](size_t i) { return runOne(kinds[i], opts, bw_set); });
    for (size_t i = 0; i < kinds.size(); ++i)
        printStats(accel::accelName(kinds[i]), stats[i], opts.csv);
    return opts.writeTelemetry();
}

int
cmdFormats(int argc, char **argv)
{
    std::string layer;
    double sparsity = 0.75;
    uint64_t seed = 42;
    std::string dump;
    std::string strategy;
    util::FlagSet flags(
        "formats",
        "Storage-format study: bytes, redundancy, bandwidth.");
    flags
        .option("layer", &layer, "XxYxNB",
                "weight-matrix shape (default 512x512x1)")
        .option("sparsity", &sparsity, "S",
                "weight sparsity degree (default 0.75)")
        .option("seed", &seed, "N", "weight-synthesis seed (default 42)")
        .option("mask-strategy", &strategy, "NAME",
                "TBS mask-search strategy: greedy optimal "
                "(default greedy)")
        .option("dump", &dump, "FILE", "write the DDC byte stream");
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;
    if (!core::isMaskStrategy(strategy))
        fail("unknown mask strategy '" + strategy + "'");

    const auto shape = !layer.empty()
        ? parseLayer(layer)
        : workload::GemmShape{"cli.formats", 512, 512, 1};

    const auto w = workload::synthWeights(shape, seed, 4096);
    const auto scores = core::magnitudeScores(w);
    core::MaskRequest mreq;
    mreq.pattern = core::Pattern::TBS;
    mreq.strategy = strategy;
    mreq.sparsity = sparsity;
    mreq.m = 8;
    const auto searched = core::tryMakeMask(scores, mreq);
    if (!searched)
        fail(searched.error().message);
    const core::MaskOutput &tbs = *searched;
    const sim::DramModel dram{sim::ArchConfig{}};

    util::Table t({"format", "bytes", "redundancy", "segments",
                   "bandwidth util"});
    auto row = [&](const std::string &name,
                   const format::Encoding &enc) {
        const auto p = enc.streamProfile(8);
        t.addRow({name, std::to_string(enc.storageBytes()),
                  util::fmtDouble(p.redundancy() * 100.0, 1) + "%",
                  std::to_string(p.segments),
                  util::fmtDouble(
                      dram.stream(p).utilisation() * 100.0, 1)
                      + "%"});
    };
    row("Dense", *format::encodeDense(w));
    row("SDC", *format::encodeSdc(w, tbs.mask));
    row("CSR", *format::encodeCsr(w, tbs.mask));
    row("Bitmap", *format::encodeBitmap(w, tbs.mask));
    row("DDC", *format::encodeDdc(w, tbs.mask, tbs.meta));
    std::printf("TBS mask on %llux%llu at %.1f%% sparsity:\n",
                static_cast<unsigned long long>(w.rows()),
                static_cast<unsigned long long>(w.cols()),
                sparsity * 100.0);
    t.print();

    if (!dump.empty()) {
        const auto bytes = format::serializeDdc(w, tbs.mask, tbs.meta);
        std::ofstream out(dump, std::ios::binary);
        if (!out
            || !out.write(reinterpret_cast<const char *>(bytes.data()),
                          static_cast<std::streamsize>(bytes.size()))) {
            std::fprintf(stderr, "tbstc: cannot write '%s'\n",
                         dump.c_str());
            return 1;
        }
        std::printf("wrote %zu-byte DDC stream to %s\n", bytes.size(),
                    dump.c_str());
    }
    return 0;
}

/**
 * fsck: validate a DDC stream dumped to disk. The one-line verdict
 * (`<path>: ok ...` / `<path>: corrupt ...`) is machine output and
 * goes to stdout; the human-readable decode diagnostic goes to
 * stderr. Exit 0 only for a stream the hardened decoder fully accepts.
 */
int
cmdFsck(int argc, char **argv)
{
    std::string path;
    util::FlagSet flags(
        "fsck",
        "Validate a dumped DDC stream; prints the decode-error class "
        "and byte offset, exits non-zero on corruption.");
    flags.positional("FILE", &path, "serialized DDC stream to check");
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "tbstc fsck: cannot read '%s'\n",
                     path.c_str());
        return 2;
    }
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    const auto parsed = format::tryDeserializeDdc(bytes);
    if (!parsed) {
        const auto &e = parsed.error();
        std::fprintf(stderr, "tbstc fsck: %s: %s\n", path.c_str(),
                     e.message.c_str());
        std::printf("%s: corrupt %s at byte %zu\n", path.c_str(),
                    format::decodeErrorName(e.kind), e.offset);
        return 1;
    }
    std::printf("%s: ok — %zux%zu matrix, m=%zu, %zu blocks, "
                "%zu kept values, %zu bytes\n",
                path.c_str(), parsed->matrix.rows(),
                parsed->matrix.cols(), parsed->meta.m,
                parsed->meta.blocks.size(), parsed->mask.nnz(),
                bytes.size());
    return 0;
}

int
cmdArea(int argc, char **argv)
{
    std::string accel;
    util::FlagSet flags("area",
                        "Area/power breakdown of an accelerator.");
    flags.option("accel", &accel, "K",
                 "accelerator: tc stc vegeta highlight rmstc sgcn "
                 "tbstc fan",
                 /*required=*/true);
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;

    const auto kind = parseAccel(accel);
    const sim::AreaModel model{accel::accelConfig(kind)};
    util::Table t({"component", "area(mm^2)", "power(mW)"});
    for (const auto &c : model.components())
        t.addRow({c.name, util::fmtDouble(c.areaMm2, 3),
                  util::fmtDouble(c.powerMw, 2)});
    t.addRow({"Total", util::fmtDouble(model.totalAreaMm2(), 3),
              util::fmtDouble(model.totalPowerMw(), 2)});
    t.print();
    return 0;
}

/**
 * cpuinfo: detected CPU features, the runnable ISA levels, the level
 * the dispatcher selected, and per-primitive provenance of the active
 * kernel table (levels borrow entries — e.g. avx512 reuses the avx2
 * rank8x8 — so each row names the level that actually implements it).
 */
int
cmdCpuinfo(int argc, char **argv)
{
    std::string isa;
    util::FlagSet flags(
        "cpuinfo",
        "Report detected CPU features and the dispatched kernel "
        "table.");
    flags.option("isa", &isa, "L",
                 "report the table for this level instead of the "
                 "dispatched one: scalar avx2 avx512 neon native");
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;
    if (!isa.empty()) {
        kernels::Isa level;
        if (!kernels::parseIsa(isa, level))
            fail("unknown ISA level '" + isa + "'");
        if (!kernels::setIsa(level))
            fail("ISA level '" + isa
                 + "' is not supported on this host");
    }

    const kernels::CpuFeatures &f = kernels::cpuFeatures();
    const std::vector<std::pair<const char *, bool>> features{
        {"sse4.2", f.sse42},
        {"pclmul", f.pclmul},
        {"bmi2", f.bmi2},
        {"avx2", f.avx2},
        {"avx512f", f.avx512f},
        {"avx512bw", f.avx512bw},
        {"avx512dq", f.avx512dq},
        {"avx512vl", f.avx512vl},
        {"avx512vpopcntdq", f.avx512vpopcntdq},
        {"asimd", f.neon},
        {"crc32", f.armCrc},
    };
    std::printf("detected features:");
    bool any = false;
    for (const auto &[name, present] : features)
        if (present) {
            std::printf(" %s", name);
            any = true;
        }
    std::printf(any ? "\n" : " (none: scalar baseline)\n");

    std::printf("supported levels: ");
    for (const kernels::Isa level : kernels::supportedIsas())
        std::printf(" %s", kernels::isaName(level));
    std::printf("\nactive level:      %s%s\n",
                kernels::isaName(kernels::activeIsa()),
                std::getenv("TBSTC_ISA") != nullptr || !isa.empty()
                    ? " (forced)"
                    : " (dispatched)");

    const kernels::KernelTable &active = kernels::active();
    const std::vector<
        std::pair<const char *,
                  const void *(*)(const kernels::KernelTable &)>>
        prims{
            {"popcount",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.popcount);
             }},
            {"popcountAnd",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.popcountAnd);
             }},
            {"popcountXor",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.popcountXor);
             }},
            {"andInplace",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.andInplace);
             }},
            {"orInplace",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.orInplace);
             }},
            {"xorInplace",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.xorInplace);
             }},
            {"bytePopcountAccum",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(
                     t.bytePopcountAccum);
             }},
            {"rank8x8",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.rank8x8);
             }},
            {"packIdx",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.packIdx);
             }},
            {"unpackIdx",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.unpackIdx);
             }},
            {"crc32",
             [](const kernels::KernelTable &t) {
                 return reinterpret_cast<const void *>(t.crc32);
             }},
        };
    std::printf("kernel table (%s):\n", active.name);
    for (const auto &[name, get] : prims) {
        // Provenance: the lowest level whose table holds the same
        // function pointer.
        const char *from = active.name;
        for (const kernels::Isa level : kernels::supportedIsas()) {
            const kernels::KernelTable *t = kernels::kernelTableFor(level);
            if (t != nullptr && get(*t) == get(active)) {
                from = t->name;
                break;
            }
        }
        std::printf("  %-18s %s\n", name, from);
    }
    return 0;
}

/**
 * serve: accept run/sparsify/stats requests over a unix or TCP socket
 * until SIGTERM/SIGINT, then drain (answer everything accepted) and
 * exit 0. SIGHUP re-reads --config and applies the new limits without
 * dropping connections. The listening address is printed to stdout as
 * one machine-parseable line; see docs/serving.md for the protocol.
 */
int
cmdServe(int argc, char **argv)
{
    const serve::ServeLimits defaults;
    std::string socket;
    uint64_t port = 0;
    uint64_t queueCap = defaults.queueCapacity;
    uint64_t maxBatch = 32;
    uint64_t retryAfterMs = defaults.retryAfterMs;
    uint64_t idleTimeoutMs = defaults.idleTimeoutMs;
    uint64_t readTimeoutMs = defaults.readTimeoutMs;
    uint64_t writeTimeoutMs = defaults.writeTimeoutMs;
    uint64_t maxConns = defaults.maxConnections;
    double rate = defaults.ratePerSec;
    double burst = defaults.rateBurst;
    uint64_t maxInflight = defaults.maxInflight;
    uint64_t threads = 0;
    std::string configPath;
    std::string metricsPath;
    std::string profileCache;
    bool noCache = false;
    std::string isa;
    util::FlagSet flags(
        "serve",
        "Serve run/sparsify requests concurrently over a socket.");
    flags
        .option("socket", &socket, "PATH",
                "listen on a unix socket (default: TCP on 127.0.0.1)")
        .option("port", &port, "N",
                "TCP port (default 0 = ephemeral; printed at start)")
        .option("queue", &queueCap, "N",
                "request-queue capacity = back-pressure threshold "
                "(default 256; overflow answers busy + retry_after_ms)")
        .option("max-batch", &maxBatch, "N",
                "max requests coalesced per execution (default 32)")
        .option("retry-after-ms", &retryAfterMs, "MS",
                "base retry hint on busy rejections (default 50; "
                "grows with sustained overload)")
        .option("idle-timeout-ms", &idleTimeoutMs, "MS",
                "reap a connection idle this long (default 30000; "
                "0 = never)")
        .option("read-timeout-ms", &readTimeoutMs, "MS",
                "a started frame must complete within this window "
                "(default 10000; 0 = no limit)")
        .option("write-timeout-ms", &writeTimeoutMs, "MS",
                "a response write must complete within this window "
                "(default 10000; 0 = no limit)")
        .option("max-conns", &maxConns, "N",
                "live-connection cap; beyond it accepts are shed with "
                "an 'overloaded' error (default 256; 0 = off)")
        .option("rate", &rate, "R",
                "per-connection token-bucket rate in req/s "
                "(default 0 = off)")
        .option("burst", &burst, "N",
                "token-bucket burst size (default 64)")
        .option("max-inflight", &maxInflight, "N",
                "per-connection cap on queued-but-unanswered requests "
                "(default 0 = off)")
        .option("config", &configPath, "FILE",
                "limits JSON overriding the flags above (see "
                "docs/serving.md); re-read and re-applied on SIGHUP "
                "without dropping connections")
        .option("threads", &threads, "N",
                "worker threads for request execution")
        .option("metrics", &metricsPath, "FILE",
                "write the final metrics JSON (host domain included) "
                "after the drain")
        .option("profile-cache", &profileCache, "DIR",
                "persist profile/sim results to DIR and reuse them")
        .flag("no-cache", &noCache,
              "disable the in-memory and on-disk result caches")
        .option("isa", &isa, "L",
                "force the kernel ISA level (see 'tbstc cpuinfo')");
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;
    if (port > 65535)
        fail("--port must be <= 65535");

    serve::ServeLimits limits;
    limits.queueCapacity = queueCap;
    limits.retryAfterMs = retryAfterMs;
    limits.idleTimeoutMs = idleTimeoutMs;
    limits.readTimeoutMs = readTimeoutMs;
    limits.writeTimeoutMs = writeTimeoutMs;
    limits.maxConnections = maxConns;
    limits.ratePerSec = rate;
    limits.rateBurst = burst;
    limits.maxInflight = maxInflight;

    // The config file overrides the flags (at startup and again on
    // every SIGHUP); fields it omits keep their flag/default values.
    const auto loadConfig = [&configPath](
                                const serve::ServeLimits &base)
        -> util::Result<serve::ServeLimits, std::string> {
        std::ifstream in(configPath);
        if (!in)
            return util::unexpected("cannot read config file: "
                                    + configPath);
        std::ostringstream text;
        text << in.rdbuf();
        return serve::parseLimits(text.str(), base);
    };
    if (!configPath.empty()) {
        const auto parsed = loadConfig(limits);
        if (!parsed)
            fail(parsed.error());
        limits = *parsed;
    }

    if (!isa.empty()) {
        kernels::Isa level;
        if (!kernels::parseIsa(isa, level)
            || !kernels::setIsa(level))
            fail("ISA level '" + isa
                 + "' is unknown or unsupported on this host");
    }
    if (threads > 0)
        util::setThreads(threads);
    if (noCache)
        util::ContentStore::instance().setEnabled(false);
    else if (!profileCache.empty())
        util::ContentStore::instance().setDiskDir(profileCache);
    // Live `stats` responses embed the metrics export, so recording
    // is always on while serving.
    obs::setMetricsEnabled(true);

    // Route SIGTERM/SIGINT/SIGHUP to a dedicated sigwait thread:
    // every thread the server spawns inherits this mask, so drains
    // and reloads are always initiated from a normal thread context,
    // never a handler.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGHUP);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    serve::ServerOptions sopts;
    sopts.socketPath = socket;
    sopts.tcpPort = static_cast<uint16_t>(port);
    sopts.maxBatch = maxBatch;
    sopts.metricsPath = metricsPath;
    sopts.limits = limits;
    serve::Server server(sopts);
    const auto started = server.start();
    if (!started) {
        std::fprintf(stderr, "tbstc serve: %s\n",
                     started.error().c_str());
        return 1;
    }
    if (socket.empty())
        std::printf("listening tcp 127.0.0.1:%u\n",
                    static_cast<unsigned>(*started));
    else
        std::printf("listening unix %s\n", socket.c_str());
    std::fflush(stdout);

    std::thread sigThread([&] {
        for (;;) {
            int signo = 0;
            sigwait(&sigs, &signo);
            if (signo == SIGHUP) {
                serve::ServeLimits next = server.currentLimits();
                if (!configPath.empty()) {
                    const auto parsed = loadConfig(next);
                    if (!parsed) {
                        // Keep serving under the current limits.
                        std::fprintf(stderr,
                                     "tbstc serve: reload failed: "
                                     "%s\n",
                                     parsed.error().c_str());
                        continue;
                    }
                    next = *parsed;
                }
                server.reloadLimits(next);
                std::fprintf(stderr,
                             "tbstc serve: limits reloaded\n");
                continue;
            }
            server.beginShutdown();
            break;
        }
    });
    server.wait();
    sigThread.join();

    const serve::ServerCounters c = server.counters();
    std::fprintf(stderr,
                 "tbstc serve: drained — %llu answered, %llu batches, "
                 "%llu dedup hits, %llu busy-rejected, "
                 "%llu connections, %llu timeouts, %llu shed, "
                 "%llu rate-limited, %llu deadline-exceeded, "
                 "%llu reloads\n",
                 static_cast<unsigned long long>(c.answered),
                 static_cast<unsigned long long>(c.batches),
                 static_cast<unsigned long long>(c.dedupHits),
                 static_cast<unsigned long long>(c.busyRejected),
                 static_cast<unsigned long long>(c.connections),
                 static_cast<unsigned long long>(c.timeouts),
                 static_cast<unsigned long long>(c.shed),
                 static_cast<unsigned long long>(c.rateLimited),
                 static_cast<unsigned long long>(c.deadlineExceeded),
                 static_cast<unsigned long long>(c.reloads));
    return 0;
}

/**
 * loadgen: closed-loop load against a serve daemon. Exit 0 only when
 * every request succeeded and (with --verify) every response matched
 * the in-process re-execution byte-for-byte.
 */
int
cmdLoadgen(int argc, char **argv)
{
    std::string socket;
    uint64_t port = 0;
    uint64_t clients = 8;
    uint64_t requests = 200;
    uint64_t seed = 42;
    uint64_t chaosClients = 0;
    uint64_t chaosSeed = 1337;
    bool json = false;
    bool verify = false;
    bool printMix = false;
    util::FlagSet flags(
        "loadgen",
        "Drive a serve daemon with a deterministic request mix.");
    flags
        .option("socket", &socket, "PATH", "daemon unix socket")
        .option("port", &port, "N", "daemon TCP port on 127.0.0.1")
        .option("clients", &clients, "N",
                "concurrent closed-loop connections (default 8)")
        .option("requests", &requests, "N",
                "total requests across all clients (default 200)")
        .option("seed", &seed, "N", "mix derivation seed (default 42)")
        .option("chaos", &chaosClients, "N",
                "hostile clients sending corrupted frames alongside "
                "the honest load (default 0)")
        .option("chaos-seed", &chaosSeed, "N",
                "chaos mutation derivation seed (default 1337)")
        .flag("json", &json,
              "print the tbstc.loadgen.v1 JSON document")
        .flag("verify", &verify,
              "re-execute each distinct request in-process and demand "
              "byte-identical csv output")
        .flag("print-mix", &printMix,
              "print the one-shot command for each mix entry and exit");
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;
    if (port > 65535)
        fail("--port must be <= 65535");

    if (printMix) {
        for (const auto &req : serve::buildMix(requests, seed))
            std::puts(serve::oneShotCommand(req).c_str());
        return 0;
    }
    if (socket.empty() && port == 0)
        fail("need --socket or --port");

    serve::LoadgenOptions lopts;
    lopts.socketPath = socket;
    lopts.port = static_cast<uint16_t>(port);
    lopts.clients = clients;
    lopts.totalRequests = requests;
    lopts.seed = seed;
    lopts.verify = verify;
    lopts.chaosClients = chaosClients;
    lopts.chaosSeed = chaosSeed;
    const auto stats = serve::runLoadgen(lopts);
    if (!stats) {
        std::fprintf(stderr, "tbstc loadgen: %s\n",
                     stats.error().c_str());
        return 1;
    }
    if (json) {
        std::printf("%s\n", serve::loadgenJson(*stats).c_str());
    } else {
        std::printf(
            "sent=%llu ok=%llu busy_retries=%llu errors=%llu "
            "mismatched=%llu\n"
            "%.1f req/s  p50=%.3f ms  p95=%.3f ms  p99=%.3f ms  "
            "(%.3f s elapsed)\n",
            static_cast<unsigned long long>(stats->sent),
            static_cast<unsigned long long>(stats->ok),
            static_cast<unsigned long long>(stats->busyRetries),
            static_cast<unsigned long long>(stats->errors),
            static_cast<unsigned long long>(stats->mismatched),
            stats->reqPerSec, stats->p50Ms, stats->p95Ms, stats->p99Ms,
            stats->elapsedSeconds);
        if (chaosClients > 0)
            std::printf("chaos_frames=%llu chaos_probes_ok=%llu\n",
                        static_cast<unsigned long long>(
                            stats->chaosFrames),
                        static_cast<unsigned long long>(
                            stats->chaosProbesOk));
    }
    return stats->errors == 0 && stats->mismatched == 0
            && stats->ok == stats->sent
        ? 0
        : 1;
}

/**
 * fuzz: seeded adversarial corruption against a live daemon's wire
 * protocol. Exit 0 only when every well-formed probe sent after the
 * corrupted frames was answered with the clean-connection bytes.
 */
int
cmdFuzz(int argc, char **argv)
{
    std::string socket;
    uint64_t port = 0;
    uint64_t seed = 1;
    uint64_t sessions = 125;
    uint64_t frames = 8;
    bool json = false;
    util::FlagSet flags(
        "fuzz",
        "Fuzz a serve daemon's wire protocol with seeded corruption.");
    flags
        .option("socket", &socket, "PATH", "daemon unix socket")
        .option("port", &port, "N", "daemon TCP port on 127.0.0.1")
        .option("seed", &seed, "N",
                "mutation derivation seed (default 1)")
        .option("sessions", &sessions, "N",
                "connections fuzzed (default 125)")
        .option("frames", &frames, "N",
                "mutated frames per session (default 8)")
        .flag("json", &json, "print the tbstc.fuzz.v1 JSON document");
    if (const int rc = parseOrReport(flags, argc, argv); rc >= 0)
        return rc;
    if (port > 65535)
        fail("--port must be <= 65535");
    if (socket.empty() && port == 0)
        fail("need --socket or --port");

    serve::FuzzOptions fopts;
    fopts.socketPath = socket;
    fopts.port = static_cast<uint16_t>(port);
    fopts.seed = seed;
    fopts.sessions = sessions;
    fopts.framesPerSession = frames;
    const auto stats = serve::runProtocolFuzz(fopts);
    if (!stats) {
        std::fprintf(stderr, "tbstc fuzz: %s\n",
                     stats.error().c_str());
        return 1;
    }
    if (json) {
        std::printf("%s\n", serve::fuzzJson(*stats).c_str());
    } else {
        std::printf(
            "sessions=%llu mutated_frames=%llu responses=%llu "
            "reconnects=%llu probes=%llu probe_mismatches=%llu\n",
            static_cast<unsigned long long>(stats->sessions),
            static_cast<unsigned long long>(stats->mutatedFrames),
            static_cast<unsigned long long>(stats->responses),
            static_cast<unsigned long long>(stats->reconnects),
            static_cast<unsigned long long>(stats->probes),
            static_cast<unsigned long long>(stats->probeMismatches));
    }
    return stats->probeMismatches == 0 ? 0 : 1;
}

int
cmdHelp(int argc, char **argv)
{
    // `tbstc help <command>` prints that subcommand's generated help.
    if (argc >= 3) {
        const std::string topic = argv[2];
        SimOpts opts;
        std::string accel;
        if (topic == "run") {
            std::fputs(runFlags(opts, accel).help().c_str(), stdout);
            return 0;
        }
        if (topic == "compare") {
            std::fputs(compareFlags(opts).help().c_str(), stdout);
            return 0;
        }
        // The remaining subcommands print their own help via --help.
        if (topic == "formats" || topic == "fsck" || topic == "area"
            || topic == "cpuinfo" || topic == "serve"
            || topic == "loadgen" || topic == "fuzz") {
            char help_flag[] = "--help";
            char *sub_argv[] = {argv[0], argv[2], help_flag};
            if (topic == "formats")
                return cmdFormats(3, sub_argv);
            if (topic == "fsck")
                return cmdFsck(3, sub_argv);
            if (topic == "cpuinfo")
                return cmdCpuinfo(3, sub_argv);
            if (topic == "serve")
                return cmdServe(3, sub_argv);
            if (topic == "loadgen")
                return cmdLoadgen(3, sub_argv);
            if (topic == "fuzz")
                return cmdFuzz(3, sub_argv);
            return cmdArea(3, sub_argv);
        }
    }
    std::puts(
        "tbstc — TB-STC sparse-tensor-core simulator\n"
        "\n"
        "usage: tbstc <command> [options]\n"
        "\n"
        "commands:\n"
        "  run      --accel K (--model M | --layer XxYxNB) [options]\n"
        "  compare  (--model M | --layer XxYxNB) [options]\n"
        "  formats  [--layer XxYxNB] [--sparsity S] [--seed N]\n"
        "           [--dump FILE]  (write the DDC byte stream)\n"
        "  fsck     FILE  (validate a dumped DDC stream)\n"
        "  area     --accel K\n"
        "  cpuinfo  [--isa L]  (CPU features, dispatched kernels)\n"
        "  serve    [--socket PATH | --port N] [--queue N] ...\n"
        "           (daemon; see docs/serving.md)\n"
        "  loadgen  (--socket PATH | --port N) [--clients N]\n"
        "           [--requests N] [--json] [--verify] [--chaos N]\n"
        "  fuzz     (--socket PATH | --port N) [--seed N]\n"
        "           [--sessions N] [--frames N]  (protocol fuzzer)\n"
        "  help     [command]\n"
        "\n"
        "accelerators: tc stc vegeta highlight rmstc sgcn tbstc fan\n"
        "models:       resnet50 resnet18 bert opt llama\n"
        "\n"
        "'tbstc help <command>' or 'tbstc <command> --help' lists the\n"
        "command's options, including the telemetry flags --trace and\n"
        "--metrics (see docs/observability.md).");
    return 0;
}

} // namespace

int
dispatch(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp(argc, argv);
    const std::string cmd = argv[1];
    try {
        if (cmd == "run")
            return cmdRun(argc, argv);
        if (cmd == "compare")
            return cmdCompare(argc, argv);
        if (cmd == "formats")
            return cmdFormats(argc, argv);
        if (cmd == "fsck")
            return cmdFsck(argc, argv);
        if (cmd == "area")
            return cmdArea(argc, argv);
        if (cmd == "cpuinfo")
            return cmdCpuinfo(argc, argv);
        if (cmd == "serve")
            return cmdServe(argc, argv);
        if (cmd == "loadgen")
            return cmdLoadgen(argc, argv);
        if (cmd == "fuzz")
            return cmdFuzz(argc, argv);
        if (cmd == "help" || cmd == "--help" || cmd == "-h")
            return cmdHelp(argc, argv);
        fail("unknown command '" + cmd + "'");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tbstc: %s\n", e.what());
        return 1;
    }
}

int
main(int argc, char **argv)
{
    const int rc = dispatch(argc, argv);
    // Deterministic pool teardown: join the workers before main
    // returns instead of relying on static-destructor order.
    util::shutdownPool();
    return rc;
}
