#!/usr/bin/env python3
"""Merge bench_kernels --json runs into a conservative baseline.

Microbenchmark timings on shared/virtualized runners are bimodal: the
host migrates the guest between cores or frequency states, and AVX-512
kernels in particular swing ~1.5x between windows with no code change.
A baseline captured in a fast window then flags every slow-window run
as a regression.

This tool merges several runs of the *same* configuration into one
baseline JSON by taking, per benchmark, the MAX of each run's
min-over-repetitions. That keeps the baseline honest about the slowest
steady state the runner exhibits, so check_perf.py only fires on real
regressions (a kernel getting slower than the machine has ever been),
not on host-state roulette.

Usage:
    tools/make_baseline.py run1.json run2.json ... -o baseline.json

All inputs must record the same context.tbstc_isa. The output keeps
the first run's context and one entry per benchmark name.

Exit codes: 0 ok, 2 bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"make_baseline: cannot read '{path}': {e}", file=sys.stderr)
        sys.exit(2)


def min_over_reps(doc, path):
    """name -> benchmark entry with cpu_time = min over repetitions."""
    best = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if name not in best or \
                float(b["cpu_time"]) < float(best[name]["cpu_time"]):
            best[name] = b
    if not best:
        print(f"make_baseline: no benchmarks in '{path}'", file=sys.stderr)
        sys.exit(2)
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("runs", nargs="+",
                    help="bench_kernels JSON runs of the same config")
    ap.add_argument("-o", "--output", required=True,
                    help="baseline JSON to write")
    args = ap.parse_args()

    docs = [load(p) for p in args.runs]
    isas = {d.get("context", {}).get("tbstc_isa") for d in docs}
    if len(isas) > 1:
        print(f"make_baseline: runs mix ISAs {sorted(map(str, isas))}; "
              f"merge only runs of one ISA", file=sys.stderr)
        return 2

    merged = {}
    for doc, path in zip(docs, args.runs):
        for name, entry in min_over_reps(doc, path).items():
            if name not in merged or \
                    float(entry["cpu_time"]) > \
                    float(merged[name]["cpu_time"]):
                merged[name] = entry

    out = dict(docs[0])
    out["benchmarks"] = [merged[n] for n in sorted(merged)]
    with open(args.output, "w") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
    print(f"make_baseline: wrote {args.output} "
          f"({len(merged)} benchmarks from {len(args.runs)} run(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
