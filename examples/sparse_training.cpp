/**
 * @file
 * End-to-end sparse training demo (paper Sec. III-B).
 *
 * Trains the same classifier four ways — dense, unstructured, 2:4
 * tile-wise, and TBS — and prints the per-epoch loss/accuracy plus
 * the hardware cost of deploying each result on TB-STC. This is the
 * workflow a model team would use: pick the pattern whose
 * accuracy/EDP point fits the budget.
 *
 * Run: ./build/examples/sparse_training
 */

#include <cstdio>
#include <vector>

#include "accel/accelerator.hpp"
#include "nn/sparse_train.hpp"
#include "util/table.hpp"

using namespace tbstc;
using core::Pattern;

int
main()
{
    // One dataset shared by every training run.
    util::Rng data_rng(2024);
    nn::DatasetConfig dc;
    dc.features = 32;
    dc.classes = 8;
    dc.trainSamples = 4096;
    dc.testSamples = 1024;
    const nn::DataSplit data = nn::makeClusterDataset(dc, data_rng);

    struct Result
    {
        Pattern pattern;
        double sparsity;
        nn::TrainResult train;
    };
    std::vector<Result> results;

    for (Pattern p : {Pattern::Dense, Pattern::US, Pattern::TS,
                      Pattern::TBS}) {
        util::Rng rng(7);
        nn::Mlp model({32, 64, 64, 8}, rng);
        nn::TrainConfig cfg;
        cfg.pattern = p;
        cfg.sparsity = p == Pattern::Dense ? 0.0 : 0.75;
        cfg.epochs = 20;
        cfg.rampEpochs = 8;
        cfg.lr = 0.08;
        std::printf("training %-5s ...\n", patternName(p).c_str());
        results.push_back(
            {p, cfg.sparsity, nn::sparseTrain(model, data, cfg, rng)});
    }

    util::banner("training curves (test accuracy per epoch)");
    util::Table curve({"epoch", "Dense", "US", "TS", "TBS",
                       "TBS sparsity"});
    const size_t epochs = results[0].train.history.size();
    for (size_t e = 0; e < epochs; e += 2) {
        curve.addRow({std::to_string(e + 1),
                      util::fmtDouble(
                          results[0].train.history[e].testAccuracy, 3),
                      util::fmtDouble(
                          results[1].train.history[e].testAccuracy, 3),
                      util::fmtDouble(
                          results[2].train.history[e].testAccuracy, 3),
                      util::fmtDouble(
                          results[3].train.history[e].testAccuracy, 3),
                      util::fmtDouble(
                          results[3].train.history[e].sparsity, 3)});
    }
    curve.print();

    // Deploying each result: only patterns the hardware can exploit
    // earn speedups; US needs RM-STC-class hardware.
    util::banner("deployment on TB-STC (layer-shaped 256x256x128)");
    util::Table deploy({"pattern", "final accuracy", "speedup vs dense",
                        "EDP vs dense"});
    accel::RunRequest dense_req;
    dense_req.shape = workload::GemmShape{"mlp.hidden", 256, 256, 128};
    dense_req.sparsity = 0.0;
    const auto dense_hw = accel::runLayer(accel::AccelKind::TC, dense_req);
    for (const auto &r : results) {
        accel::RunRequest req = dense_req;
        req.sparsity = r.sparsity;
        req.patternOverride = r.pattern;
        const auto kind = r.pattern == Pattern::US
            ? accel::AccelKind::RmStc
            : accel::AccelKind::TbStc;
        const auto hw = r.pattern == Pattern::Dense
            ? dense_hw
            : accel::runLayer(kind, req);
        deploy.addRow({patternName(r.pattern),
                       util::fmtDouble(r.train.finalAccuracy * 100.0, 2),
                       util::fmtDouble(dense_hw.cycles / hw.cycles, 2)
                           + "x",
                       util::fmtDouble(hw.edp / dense_hw.edp, 3)});
    }
    deploy.print();
    std::printf("\nTBS keeps US-class accuracy while running on "
                "structured-sparse hardware —\nthe paper's central "
                "trade-off.\n");
    return 0;
}
