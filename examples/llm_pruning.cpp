/**
 * @file
 * LLM-style one-shot pruning + deployment walkthrough.
 *
 * Mirrors the paper's Table II / Fig. 13 workflow on an LLM workload:
 *  1. One-shot-prune a trained network with Wanda and with SparseGPT
 *     (real OBS compensation), under both the 2:4-style TS pattern
 *     and TBS, and compare held-out accuracy.
 *  2. Simulate OPT-6.7B inference (its real layer shapes) on the
 *     accelerator fleet at the chosen sparsity and print the
 *     latency/energy/EDP table a deployment engineer would read.
 *
 * Run: ./build/examples/llm_pruning
 */

#include <cstdio>
#include <vector>

#include "accel/accelerator.hpp"
#include "nn/oneshot.hpp"
#include "nn/sparse_train.hpp"
#include "util/table.hpp"

using namespace tbstc;
using core::Criterion;
using core::Pattern;

int
main()
{
    // --- 1. One-shot pruning study on a trained stand-in model. ---
    util::Rng rng(11);
    nn::DatasetConfig dc;
    dc.features = 32;
    dc.classes = 8;
    dc.trainSamples = 4096;
    dc.testSamples = 2048;
    dc.clusterStddev = 0.8;
    const nn::DataSplit data = nn::makeClusterDataset(dc, rng);

    nn::Mlp model({32, 64, 64, 8}, rng);
    nn::TrainConfig tcfg;
    tcfg.pattern = Pattern::Dense;
    tcfg.epochs = 30;
    tcfg.lr = 0.08;
    (void)nn::sparseTrain(model, data, tcfg, rng);
    const double dense_acc =
        model.accuracy(data.test.x, data.test.labels) * 100.0;
    std::printf("dense model accuracy: %.2f%%\n", dense_acc);

    util::banner("one-shot pruning at 50% (criterion x pattern)");
    util::Table t({"criterion", "pattern", "accuracy", "drop"});
    for (Criterion c : {Criterion::Wanda, Criterion::SparseGpt}) {
        for (Pattern p : {Pattern::TS, Pattern::TBS}) {
            nn::Mlp pruned = model;
            nn::OneshotConfig cfg;
            cfg.pattern = p;
            cfg.criterion = c;
            cfg.sparsity = 0.5;
            nn::oneshotPrune(pruned, data.train.x, cfg);
            const double acc =
                pruned.accuracy(data.test.x, data.test.labels) * 100.0;
            t.addRow({criterionName(c), patternName(p),
                      util::fmtDouble(acc, 2),
                      util::fmtDouble(acc - dense_acc, 2)});
        }
    }
    t.print();

    // --- 2. Deployment: OPT-6.7B inference on the accelerator zoo. --
    util::banner("OPT-6.7B prefill (seq 256), 50% weight sparsity");
    util::Table d({"accel", "latency (ms)", "energy (mJ)", "EDP",
                   "vs TB-STC"});
    const auto tb = accel::runModel(accel::AccelKind::TbStc,
                                    workload::ModelId::Opt67b, 0.5, 256);
    for (auto kind : {accel::AccelKind::TC, accel::AccelKind::STC,
                      accel::AccelKind::HighLight, accel::AccelKind::RmStc,
                      accel::AccelKind::TbStc}) {
        const auto s = kind == accel::AccelKind::TbStc
            ? tb
            : accel::runModel(kind, workload::ModelId::Opt67b, 0.5, 256);
        d.addRow({accel::accelName(kind),
                  util::fmtDouble(s.seconds * 1e3, 2),
                  util::fmtDouble(s.energy.totalJ() * 1e3, 2),
                  util::fmtDouble(s.edp * 1e6, 3),
                  util::fmtDouble(s.edp / tb.edp, 2) + "x"});
    }
    d.print();
    std::printf("\nTBS matches the accuracy of far looser patterns "
                "while TB-STC's hardware\nturns the sparsity into "
                "real EDP savings.\n");
    return 0;
}
