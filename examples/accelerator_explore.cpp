/**
 * @file
 * Architecture design-space exploration with the cycle-level
 * simulator: sweep the knobs of a TB-STC-class accelerator (DVPE
 * count, bandwidth, scheduler lookahead, feature units) on a fixed
 * workload and print the cost/performance frontier. This is the
 * "what-if" loop an architect runs before committing RTL.
 *
 * Run: ./build/examples/accelerator_explore
 */

#include <cstdio>
#include <vector>

#include "accel/accelerator.hpp"
#include "sim/energy.hpp"
#include "util/table.hpp"

using namespace tbstc;
using accel::AccelKind;

namespace {

sim::RunStats
runWith(const sim::ArchConfig &cfg)
{
    accel::RunRequest req;
    req.shape = workload::GemmShape{"bert.fc1", 3072, 768, 128};
    req.sparsity = 0.75;
    req.configOverride = cfg;
    return accel::runLayer(AccelKind::TbStc, req);
}

} // namespace

int
main()
{
    const auto base_cfg = accel::accelConfig(AccelKind::TbStc);
    const auto base = runWith(base_cfg);

    util::banner("compute scaling: DVPE arrays (BERT FFN, 75% TBS)");
    util::Table t1({"arrays", "MACs/cycle", "cycles", "speedup",
                    "area (mm^2)"});
    for (size_t arrays : {4u, 8u, 16u, 32u}) {
        auto cfg = base_cfg;
        cfg.dvpeArrays = arrays;
        const auto s = runWith(cfg);
        const sim::AreaModel area(cfg);
        t1.addRow({std::to_string(arrays),
                   std::to_string(cfg.totalLanes()),
                   util::fmtDouble(s.cycles, 0),
                   util::fmtDouble(base.cycles / s.cycles, 2) + "x",
                   util::fmtDouble(area.totalAreaMm2(), 2)});
    }
    t1.print();

    util::banner("bandwidth scaling at 16 arrays");
    util::Table t2({"GB/s", "cycles", "bound by"});
    for (double bw : {64.0, 128.0, 256.0, 512.0}) {
        auto cfg = base_cfg;
        cfg.dvpeArrays = 16;
        cfg.dramGbps = bw;
        const auto s = runWith(cfg);
        t2.addRow({util::fmtDouble(bw, 0), util::fmtDouble(s.cycles, 0),
                   s.breakdown.memory > s.breakdown.compute ? "memory"
                                                            : "compute"});
    }
    t2.print();

    util::banner("scheduling policy (wave dispatch vs scheduling unit)");
    util::Table t3({"policy", "sched util", "cycles"});
    for (auto policy : {sim::InterSched::Naive, sim::InterSched::Aware}) {
        auto cfg = base_cfg;
        cfg.interSched = policy;
        const auto s = runWith(cfg);
        t3.addRow({policy == sim::InterSched::Naive ? "naive waves"
                                                    : "sparsity-aware",
                   util::fmtDouble(s.schedUtilisation * 100.0, 1) + "%",
                   util::fmtDouble(s.cycles, 0)});
    }
    t3.print();

    util::banner("feature ablation (what each unit buys)");
    util::Table t4({"configuration", "cycles", "EDP vs full"});
    struct Variant
    {
        const char *name;
        bool codec;
        bool mbd;
        bool alternate;
    };
    for (const Variant &v :
         {Variant{"full TB-STC", true, true, true},
          Variant{"no alternate unit", true, true, false},
          Variant{"no codec/MBD (dense fallback)", false, false, false}}) {
        auto cfg = base_cfg;
        cfg.codecUnit = v.codec;
        cfg.mbdUnit = v.mbd;
        cfg.alternateUnit = v.alternate;
        accel::RunRequest req;
        req.shape = workload::GemmShape{"bert.fc1", 3072, 768, 128};
        req.sparsity = 0.75;
        req.configOverride = cfg;
        // Without codec+MBD the hardware must densify independent
        // blocks; model that through the facade's fallback by
        // pretending to be a reduced kind.
        if (!v.codec) {
            req.patternOverride = core::Pattern::TBS;
            const auto s = accel::runLayer(AccelKind::Vegeta, req);
            t4.addRow({v.name, util::fmtDouble(s.cycles, 0),
                       util::fmtDouble(s.edp / base.edp, 2) + "x"});
            continue;
        }
        const auto s = accel::runLayer(AccelKind::TbStc, req);
        t4.addRow({v.name, util::fmtDouble(s.cycles, 0),
                   util::fmtDouble(s.edp / base.edp, 2) + "x"});
    }
    t4.print();

    std::printf("\nReading: the paper's 8-array / 64 GB/s design point "
                "balances compute against\nbandwidth for DL layer "
                "shapes; the codec+MBD+alternate trio is what makes "
                "the\nTBS pattern pay off.\n");
    return 0;
}
