/**
 * @file
 * Quickstart: the five-minute tour of the TB-STC library.
 *
 *  1. Synthesize a weight matrix and prune it with the TBS pattern
 *     (paper Algorithm 1).
 *  2. Inspect the mask: sparsity, similarity to unstructured pruning,
 *     block-direction distribution.
 *  3. Encode it in the DDC storage format and verify the lossless
 *     round trip.
 *  4. Simulate the layer on the TB-STC accelerator and on the dense
 *     tensor core, and compare cycles/energy/EDP.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

// The umbrella header is the library's public API surface; see its
// header comment for the primary (Result-returning) vs legacy tiers.
#include "tbstc.hpp"

using namespace tbstc;

int
main()
{
    // --- 1. A weight matrix and its TBS mask. ---------------------
    const workload::GemmShape shape{"demo.layer", 256, 256, 128};
    const core::Matrix w = workload::synthWeights(shape, /*seed=*/1);
    const core::Matrix scores = core::magnitudeScores(w);

    const double sparsity = 0.75;
    const core::TbsResult tbs = core::tbsMask(
        scores, sparsity, /*m=*/8, core::defaultCandidates(8));

    std::printf("TBS mask: %zu x %zu, sparsity %.1f%% (target %.1f%%)\n",
                tbs.mask.rows(), tbs.mask.cols(),
                tbs.mask.sparsity() * 100.0, sparsity * 100.0);

    // --- 2. How close is it to unstructured pruning? --------------
    const core::Mask us = core::usMask(scores, sparsity);
    std::printf("similarity to the unstructured mask: %.1f%% "
                "(paper Fig. 4(b): 85-92%%)\n",
                tbs.mask.agreement(us) * 100.0);

    const auto dist = core::directionDistribution(tbs.meta);
    std::printf("block directions: %.1f%% row-wise, %.1f%% "
                "column-wise, %.1f%% dense/empty\n",
                dist.rowFrac * 100.0, dist.colFrac * 100.0,
                dist.otherFrac * 100.0);

    // --- 3. DDC encoding round trip. -------------------------------
    const auto ddc = format::encodeDdc(w, tbs.mask, tbs.meta);
    const core::Matrix decoded = ddc->decode();
    const double err =
        core::maxAbsDiff(decoded, core::applyMask(w, tbs.mask));
    std::printf("DDC: %llu bytes (dense would be %zu), round-trip "
                "error %.1e\n",
                static_cast<unsigned long long>(ddc->storageBytes()),
                w.size() * 2, err);

    // --- 4. Simulate on TB-STC vs the dense tensor core. ----------
    accel::RunRequest req;
    req.shape = shape;
    req.sparsity = sparsity;
    const auto dense = accel::runLayer(accel::AccelKind::TC, req);
    const auto sparse = accel::runLayer(accel::AccelKind::TbStc, req);

    std::printf("\n%-8s %12s %14s %14s\n", "accel", "cycles",
                "energy (uJ)", "EDP (nJ*s)");
    std::printf("%-8s %12.0f %14.3f %14.4f\n", "TC", dense.cycles,
                dense.energy.totalJ() * 1e6, dense.edp * 1e9);
    std::printf("%-8s %12.0f %14.3f %14.4f\n", "TB-STC", sparse.cycles,
                sparse.energy.totalJ() * 1e6, sparse.edp * 1e9);
    std::printf("\nTB-STC: %.2fx speedup, %.2fx better EDP at %.0f%% "
                "sparsity.\n",
                dense.cycles / sparse.cycles, dense.edp / sparse.edp,
                sparsity * 100.0);
    return 0;
}
